// Tests of the streaming sliding-window motif engine: ring-matrix
// maintenance, incremental bound maintenance under eviction, and the
// headline guarantee — after every slide the streaming answer is
// bit-identical to a from-scratch FindMotif on the identical window,
// while doing strictly less DP work on seeded slides.

#include <cmath>
#include <optional>
#include <vector>

#include "data/datasets.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "motif/motif.h"
#include "motif/relaxed_bounds.h"
#include "similarity/frechet.h"
#include "stream/streaming_motif_monitor.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

Trajectory GeoWalk(Index n, std::uint64_t seed) {
  DatasetOptions options;
  options.length = n;
  options.seed = seed;
  return MakeDataset(DatasetKind::kGeoLifeLike, options).value();
}

// --- RingDistanceMatrix -----------------------------------------------------

TEST(RingDistanceMatrix, SelfMatrixMatchesBuildAfterEvictions) {
  const Trajectory t = GeoWalk(40, 11);
  const HaversineMetric metric;
  const Index w = 16;
  RingDistanceMatrix ring(w, w);
  std::vector<Point> window;
  for (Index k = 0; k < t.size(); ++k) {
    if (static_cast<Index>(window.size()) == w) {
      window.erase(window.begin());
    }
    const Point p = t[k];
    ring.AppendPoint(
        [&](Index i) { return metric.Distance(p, window[i]); },
        [&](Index i) { return metric.Distance(window[i], p); },
        metric.Distance(p, p));
    window.push_back(p);

    ASSERT_EQ(static_cast<Index>(window.size()), ring.rows());
    ASSERT_EQ(ring.rows(), ring.cols());
    const Trajectory wt{std::vector<Point>(window.begin(), window.end())};
    const DistanceMatrix fresh = DistanceMatrix::Build(wt, metric).value();
    for (Index i = 0; i < ring.rows(); ++i) {
      for (Index j = 0; j < ring.cols(); ++j) {
        ASSERT_EQ(fresh.Distance(i, j), ring.Distance(i, j))
            << "cell (" << i << "," << j << ") after point " << k;
      }
    }
  }
}

TEST(RingDistanceMatrix, CrossMatrixRowColAppends) {
  const Trajectory a = GeoWalk(30, 3);
  const Trajectory b = GeoWalk(30, 4);
  const HaversineMetric metric;
  RingDistanceMatrix ring(8, 12);
  std::vector<Point> rows_pts;
  std::vector<Point> cols_pts;
  for (Index k = 0; k < 30; ++k) {
    if (static_cast<Index>(rows_pts.size()) == 8) {
      rows_pts.erase(rows_pts.begin());
    }
    const Point pr = a[k];
    ring.AppendRow([&](Index j) { return metric.Distance(pr, cols_pts[j]); });
    rows_pts.push_back(pr);

    if (static_cast<Index>(cols_pts.size()) == 12) {
      cols_pts.erase(cols_pts.begin());
    }
    const Point pc = b[k];
    ring.AppendCol([&](Index i) { return metric.Distance(rows_pts[i], pc); });
    cols_pts.push_back(pc);
  }
  ASSERT_EQ(8, ring.rows());
  ASSERT_EQ(12, ring.cols());
  for (Index i = 0; i < ring.rows(); ++i) {
    for (Index j = 0; j < ring.cols(); ++j) {
      ASSERT_EQ(metric.Distance(rows_pts[i], cols_pts[j]), ring.Distance(i, j));
    }
  }
}

// --- Incremental bound maintenance ------------------------------------------

TEST(StreamingBounds, MaintainedArraysEqualFreshBuildAtEverySlide) {
  StreamOptions options;
  options.window_length = 60;
  options.slide_step = 7;  // not a divisor of the window, to move the heads
  options.min_length_xi = 10;
  const HaversineMetric metric;
  auto monitor = StreamingMotifMonitor::Create(options, metric);
  ASSERT_TRUE(monitor.ok()) << monitor.status();

  MotifOptions motif;
  motif.min_length_xi = options.min_length_xi;
  motif.variant = MotifVariant::kSingleTrajectory;

  const Trajectory t = GeoWalk(300, 21);
  int checked = 0;
  for (Index k = 0; k < t.size(); ++k) {
    auto update = monitor.value().Push(t[k]);
    ASSERT_TRUE(update.ok()) << update.status();
    if (!update.value().has_value()) continue;
    const Trajectory window = monitor.value().WindowTrajectory();
    const DistanceMatrix dg = DistanceMatrix::Build(window, metric).value();
    const RelaxedBounds fresh = RelaxedBounds::Build(dg, motif);
    const RelaxedBounds maintained = monitor.value().CurrentBounds();
    const Index w = options.window_length;
    for (Index j = 0; j < w; ++j) {
      ASSERT_EQ(fresh.Rmin(j), maintained.Rmin(j)) << "Rmin " << j;
      ASSERT_EQ(fresh.RminFull(j), maintained.RminFull(j)) << "RminFull " << j;
      ASSERT_EQ(fresh.BandRow(j), maintained.BandRow(j)) << "BandRow " << j;
    }
    for (Index i = 0; i < w; ++i) {
      ASSERT_EQ(fresh.Cmin(i), maintained.Cmin(i)) << "Cmin " << i;
      ASSERT_EQ(fresh.CminStart(i), maintained.CminStart(i))
          << "CminStart " << i;
      ASSERT_EQ(fresh.CminFull(i), maintained.CminFull(i)) << "CminFull " << i;
      ASSERT_EQ(fresh.BandCol(i), maintained.BandCol(i)) << "BandCol " << i;
    }
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

// --- Streaming <-> batch parity ---------------------------------------------

/// Replays `t` through a monitor and, at every slide, requires the
/// streaming answer to equal a from-scratch FindMotif over the identical
/// window — candidate and distance, bit for bit. Returns the number of
/// (seeded searches, searches where streaming did strictly fewer DP
/// cells than from-scratch).
struct ParityOutcome {
  int searches = 0;
  int seeded = 0;
  int strictly_fewer_cells = 0;
  std::int64_t stream_cells = 0;
  std::int64_t scratch_cells = 0;
};

ParityOutcome ReplayAndCheckParity(const Trajectory& t,
                                   const StreamOptions& options,
                                   const GroundMetric& metric) {
  ParityOutcome outcome;
  auto monitor = StreamingMotifMonitor::Create(options, metric);
  EXPECT_TRUE(monitor.ok()) << monitor.status();
  if (!monitor.ok()) return outcome;
  for (Index k = 0; k < t.size(); ++k) {
    auto push = monitor.value().Push(t[k]);
    EXPECT_TRUE(push.ok()) << push.status();
    if (!push.ok() || !push.value().has_value()) continue;
    const StreamUpdate& update = *push.value();

    MotifStats scratch_stats;
    const Trajectory window = monitor.value().WindowTrajectory();
    auto scratch = FindMotif(window, metric, options.BaselineOptions(),
                             &scratch_stats);
    EXPECT_TRUE(scratch.ok()) << scratch.status();
    if (!scratch.ok()) return outcome;

    EXPECT_EQ(scratch.value().found, update.motif.found);
    // Candidate and distance are unconditionally bit-identical to
    // from-scratch — carried slides and exact ties included (both paths
    // resolve equal distances to the canonical candidate order).
    EXPECT_EQ(scratch.value().distance, update.motif.distance)
        << "slide at window_start=" << update.window_start;
    EXPECT_EQ(scratch.value().best, update.motif.best)
        << "slide at window_start=" << update.window_start
        << (update.carried ? " (carried)" : "");

    ++outcome.searches;
    outcome.stream_cells += update.stats.dfd_cells_computed;
    outcome.scratch_cells += scratch_stats.dfd_cells_computed;
    if (update.seeded) {
      ++outcome.seeded;
      // The seeded search can never do more DP work than from-scratch
      // (it prunes against a tighter-or-equal threshold throughout).
      EXPECT_LE(update.stats.dfd_cells_computed,
                scratch_stats.dfd_cells_computed);
      if (update.stats.dfd_cells_computed <
          scratch_stats.dfd_cells_computed) {
        ++outcome.strictly_fewer_cells;
      }
    }
  }
  return outcome;
}

TEST(StreamingParity, ThousandPointReplayBitIdenticalAndCheaper) {
  StreamOptions options;
  options.window_length = 160;
  options.slide_step = 16;
  options.min_length_xi = 24;
  const HaversineMetric metric;
  const Trajectory t = GeoWalk(1200, 7);
  const ParityOutcome outcome = ReplayAndCheckParity(t, options, metric);
  EXPECT_EQ((1200 - 160) / 16 + 1, outcome.searches);
  // Nearly every slide should find its previous best still in the window.
  EXPECT_GE(outcome.seeded, outcome.searches / 2);
  // The whole point of the engine: never more DP work than re-running
  // from scratch (asserted per slide inside the replay), strictly less
  // on the vast majority of seeded slides, and strictly less in
  // aggregate. (A handful of slides tie: when the from-scratch queue
  // collapses after its very first evaluated subset there is nothing
  // left for the dirty-region restriction to remove.)
  EXPECT_GE(outcome.strictly_fewer_cells, outcome.seeded * 2 / 3);
  EXPECT_LT(outcome.stream_cells, outcome.scratch_cells);
}

TEST(StreamingParity, EuclideanMetricReplay) {
  StreamOptions options;
  options.window_length = 120;
  options.slide_step = 24;
  options.min_length_xi = 16;
  const EuclideanMetric metric;
  const Trajectory t = testing_util::MakePlanarWalk(600, 13);
  // Planar-walk data produces genuine exact-distance ties (overlapping
  // pairs sharing one bottleneck cell) — exactly the case the canonical
  // tie-break exists for: carried slides must now match from-scratch
  // pair-for-pair, not just distance-for-distance.
  const ParityOutcome outcome = ReplayAndCheckParity(t, options, metric);
  EXPECT_EQ((600 - 120) / 24 + 1, outcome.searches);
  EXPECT_LT(outcome.stream_cells, outcome.scratch_cells);
}

TEST(StreamingParity, ColdSlidesWhenWindowFullyTurnsOver) {
  // slide_step == window_length: every slide replaces the whole window,
  // so no search can be seeded — each one degenerates to from-scratch
  // and must still match it exactly.
  StreamOptions options;
  options.window_length = 80;
  options.slide_step = 80;
  options.min_length_xi = 12;
  const HaversineMetric metric;
  const Trajectory t = GeoWalk(400, 29);
  const ParityOutcome outcome = ReplayAndCheckParity(t, options, metric);
  EXPECT_EQ(5, outcome.searches);
  EXPECT_EQ(0, outcome.seeded);
  EXPECT_EQ(outcome.stream_cells, outcome.scratch_cells);
}

TEST(StreamingParity, CrossTrajectoryWindows) {
  StreamOptions options;
  options.window_length = 70;
  options.slide_step = 20;
  options.min_length_xi = 10;
  const HaversineMetric metric;
  const Trajectory a = GeoWalk(300, 31);
  const Trajectory b = GeoWalk(300, 32);
  auto monitor = StreamingMotifMonitor::CreateCross(options, metric);
  ASSERT_TRUE(monitor.ok()) << monitor.status();
  int searches = 0;
  for (Index k = 0; k < 300; ++k) {
    for (int side = 0; side < 2; ++side) {
      auto push = side == 0 ? monitor.value().Push(a[k])
                            : monitor.value().PushSecond(b[k]);
      ASSERT_TRUE(push.ok()) << push.status();
      if (!push.value().has_value()) continue;
      const StreamUpdate& update = *push.value();
      auto scratch = FindMotif(monitor.value().WindowTrajectory(),
                               monitor.value().SecondWindowTrajectory(),
                               metric, options.BaselineOptions());
      ASSERT_TRUE(scratch.ok()) << scratch.status();
      EXPECT_EQ(scratch.value().best, update.motif.best);
      EXPECT_EQ(scratch.value().distance, update.motif.distance);
      ++searches;
    }
  }
  EXPECT_GT(searches, 10);
}

// --- API edges ---------------------------------------------------------------

TEST(StreamingMonitor, RejectsInvalidOptions) {
  const HaversineMetric metric;
  StreamOptions too_small;
  too_small.window_length = 20;
  too_small.min_length_xi = 10;  // needs W >= 2*xi + 4
  EXPECT_FALSE(StreamingMotifMonitor::Create(too_small, metric).ok());

  StreamOptions bad_step;
  bad_step.slide_step = 0;
  EXPECT_FALSE(StreamingMotifMonitor::Create(bad_step, metric).ok());
}

TEST(StreamingMonitor, PushSecondRequiresCrossMode) {
  const HaversineMetric metric;
  StreamOptions options;
  options.window_length = 40;
  options.min_length_xi = 8;
  auto monitor = StreamingMotifMonitor::Create(options, metric);
  ASSERT_TRUE(monitor.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition,
            monitor.value().PushSecond(LatLon(0, 0)).status().code());
}

TEST(StreamingMonitor, RejectsMixedTimestampedPushes) {
  const HaversineMetric metric;
  StreamOptions options;
  options.window_length = 40;
  options.min_length_xi = 8;
  auto monitor = StreamingMotifMonitor::Create(options, metric);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE(monitor.value().Push(LatLon(39.9, 116.3), 100.0).ok());
  EXPECT_FALSE(monitor.value().Push(LatLon(39.9, 116.3)).ok());
}

TEST(StreamingMonitor, WindowTrajectoryCarriesTimestamps) {
  const HaversineMetric metric;
  StreamOptions options;
  options.window_length = 24;
  options.slide_step = 4;
  options.min_length_xi = 4;
  auto monitor = StreamingMotifMonitor::Create(options, metric);
  ASSERT_TRUE(monitor.ok());
  const Trajectory t = GeoWalk(40, 5);
  for (Index k = 0; k < t.size(); ++k) {
    ASSERT_TRUE(monitor.value().Push(t[k], 10.0 * k).ok());
  }
  const Trajectory window = monitor.value().WindowTrajectory();
  ASSERT_TRUE(window.has_timestamps());
  ASSERT_EQ(24, window.size());
  EXPECT_EQ(10.0 * (40 - 24), window.timestamp(0));
  EXPECT_EQ(10.0 * 39, window.timestamp(23));
  EXPECT_EQ(static_cast<std::int64_t>(40 - 24),
            monitor.value().points_seen() - window.size());
}

TEST(StreamingMonitor, PushBatchEmitsEveryDueUpdate) {
  const HaversineMetric metric;
  StreamOptions options;
  options.window_length = 60;
  options.slide_step = 10;
  options.min_length_xi = 8;
  auto monitor = StreamingMotifMonitor::Create(options, metric);
  ASSERT_TRUE(monitor.ok());
  const Trajectory t = GeoWalk(200, 17);
  auto updates = monitor.value().PushBatch(t.points());
  ASSERT_TRUE(updates.ok()) << updates.status();
  EXPECT_EQ((200 - 60) / 10 + 1,
            static_cast<Index>(updates.value().size()));
  const StreamEngineStats& stats = monitor.value().engine_stats();
  EXPECT_EQ(200, stats.points_ingested);
  EXPECT_EQ(static_cast<std::int64_t>(updates.value().size()),
            stats.searches);
  EXPECT_GT(stats.ground_distances_computed, 0);
}

}  // namespace
}  // namespace frechet_motif
