#ifndef FRECHET_MOTIF_TESTS_FAULT_FS_H_
#define FRECHET_MOTIF_TESTS_FAULT_FS_H_

/// Fault-injecting in-memory filesystem for the durability tests.
///
/// `FaultFs` implements `DurableFs` with the crash semantics a real
/// disk exposes but almost never at a reproducible moment:
///
///  * Every file carries **durable** bytes (covered by a `Sync`) and a
///    **pending** suffix (written but not yet synced). Reads see both —
///    the page cache — but a crash keeps only the durable bytes plus a
///    *random prefix* of the pending ones (the kernel may have flushed
///    some pages on its own, and the last write may tear mid-record).
///  * `CrashAfter(n)` kills the "process" on the n-th subsequent
///    mutating operation: the op applies a random prefix of its data
///    (torn write), then it — and every later op — fails with IoError.
///    Crash points therefore land *between* a write and its sync, or
///    between a sync and its rename, exactly the windows the store's
///    commit protocol must survive.
///  * `Restart(...)` reboots: resolves every file to its crash-surviving
///    content and clears the crashed state, so a fresh `DurableFleet::
///    Open` can run recovery against the wreckage.
///  * `FlipBit(path, bit)` corrupts stable storage for checksum and
///    generation-fallback tests.
///
/// `Rename` is name-atomic (the destination is the whole source file,
/// never a mix) but does **not** launder durability: an unsynced file
/// stays torn-able after a rename, so a protocol that renames before
/// syncing is caught.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "durable/durable_fs.h"
#include "util/random.h"

namespace frechet_motif {
namespace testing_util {

class FaultFs : public DurableFs {
 public:
  /// `seed` drives the torn-write prefix lengths.
  explicit FaultFs(std::uint64_t seed) : rng_(seed) {}

  /// Arms the crash countdown: the `ops`-th mutating operation from now
  /// (1 = the very next one) tears and fails, as do all later ones.
  void CrashAfter(std::int64_t ops) { crash_countdown_ = ops; }

  /// True once an armed crash has fired.
  bool crashed() const { return crashed_; }

  /// Reboots after a crash (or a hard kill between calls): unsynced
  /// bytes collapse to a random prefix, the crash state clears.
  void Restart() {
    for (auto& [path, file] : files_) {
      const std::uint64_t kept =
          rng_.NextUint64(static_cast<std::uint64_t>(file.pending.size()) + 1);
      file.durable += file.pending.substr(0, static_cast<std::size_t>(kept));
      file.pending.clear();
    }
    crashed_ = false;
    crash_countdown_ = -1;
  }

  /// Flips one bit of `path`'s current content (durable + pending),
  /// modeling stable-storage corruption. `bit` is taken modulo the
  /// file's bit count. False when the file is missing or empty.
  bool FlipBit(const std::string& path, std::uint64_t bit) {
    auto it = files_.find(path);
    if (it == files_.end()) return false;
    const std::size_t durable_bits = it->second.durable.size() * 8;
    const std::size_t total_bits =
        durable_bits + it->second.pending.size() * 8;
    if (total_bits == 0) return false;
    bit %= total_bits;
    std::string& target = bit < durable_bits
                              ? it->second.durable
                              : (bit -= durable_bits, it->second.pending);
    target[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    return true;
  }

  /// Total mutating operations performed (for sizing CrashAfter).
  std::int64_t op_count() const { return op_count_; }

  // DurableFs:

  StatusOr<std::string> ReadFile(const std::string& path) override {
    const auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    return it->second.durable + it->second.pending;
  }

  Status WriteFile(const std::string& path, std::string_view data) override {
    FM_RETURN_IF_ERROR(BeginOp(path, data));
    File& file = files_[path];
    file.durable.clear();
    file.pending.assign(data.data(), data.size());
    return Status::Ok();
  }

  Status Append(const std::string& path, std::string_view data) override {
    FM_RETURN_IF_ERROR(BeginOp(path, data));
    files_[path].pending.append(data.data(), data.size());
    return Status::Ok();
  }

  Status Sync(const std::string& path) override {
    FM_RETURN_IF_ERROR(BeginOp(path, {}));
    const auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    it->second.durable += it->second.pending;
    it->second.pending.clear();
    return Status::Ok();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    FM_RETURN_IF_ERROR(BeginOp(from, {}));
    const auto it = files_.find(from);
    if (it == files_.end()) return Status::NotFound("no such file: " + from);
    files_[to] = it->second;
    files_.erase(it);
    return Status::Ok();
  }

  Status Remove(const std::string& path) override {
    FM_RETURN_IF_ERROR(BeginOp(path, {}));
    if (files_.erase(path) == 0) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Ok();
  }

  StatusOr<bool> Exists(const std::string& path) override {
    return files_.count(path) > 0 || dirs_.count(path) > 0;
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::vector<std::string> names;
    const std::string prefix = dir + "/";
    for (const auto& [path, file] : files_) {
      if (path.size() > prefix.size() &&
          path.compare(0, prefix.size(), prefix) == 0 &&
          path.find('/', prefix.size()) == std::string::npos) {
        names.push_back(path.substr(prefix.size()));
      }
    }
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    FM_RETURN_IF_ERROR(BeginOp(dir, {}));
    dirs_.insert(dir);
    return Status::Ok();
  }

 private:
  struct File {
    std::string durable;
    std::string pending;
  };

  /// Common mutating-op prologue: fails when already crashed, fires an
  /// armed crash (tearing `data` into `path` first).
  Status BeginOp(const std::string& path, std::string_view torn_data) {
    if (crashed_) return Status::IoError("crashed (injected)");
    ++op_count_;
    if (crash_countdown_ > 0 && --crash_countdown_ == 0) {
      crashed_ = true;
      if (!torn_data.empty()) {
        const std::uint64_t kept = rng_.NextUint64(torn_data.size() + 1);
        files_[path].pending.append(torn_data.data(),
                                    static_cast<std::size_t>(kept));
      }
      return Status::IoError("crashed (injected)");
    }
    return Status::Ok();
  }

  std::map<std::string, File> files_;
  std::set<std::string> dirs_;
  Rng rng_;
  std::int64_t crash_countdown_ = -1;
  bool crashed_ = false;
  std::int64_t op_count_ = 0;
};

}  // namespace testing_util
}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_TESTS_FAULT_FS_H_
