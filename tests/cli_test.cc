// Integration tests for the fmotif command-line tool: exit codes, --help,
// malformed-input diagnostics, determinism, and the JSON output schema of
// every subcommand, with golden-file comparisons of number-normalized
// output.
//
// The binary path and golden directory arrive as compile definitions
// (FMOTIF_BINARY, FMOTIF_GOLDEN_DIR) from tests/CMakeLists.txt. To update
// goldens after an intentional output change:
//
//   FMOTIF_UPDATE_GOLDEN=1 ./build/tests/cli_test

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

/// Runs `fmotif <args>` capturing stdout+stderr and the exit code.
CommandResult RunFmotif(const std::string& args) {
  const std::string command =
      std::string(FMOTIF_BINARY) + " " + args + " 2>&1";
  CommandResult result;
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fmotif_cli_" + name;
}

/// Runs an arbitrary shell command (for pipelines, background jobs and
/// signal delivery) capturing its stdout and exit code.
CommandResult RunShell(const std::string& command) {
  CommandResult result;
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// Replaces every numeric literal with <num> and the test temp dir with
/// <tmp>, so goldens pin the output *structure* without rotting on
/// platform FP differences or temp paths.
std::string Normalize(std::string text) {
  const std::string tmp = ::testing::TempDir();
  std::size_t at = 0;
  while ((at = text.find(tmp, at)) != std::string::npos) {
    text.replace(at, tmp.size(), "<tmp>/");
  }
  static const std::regex number(R"(-?\d+(\.\d+)?([eE][+-]?\d+)?)");
  return std::regex_replace(text, number, "<num>");
}

std::string GoldenPath(const std::string& name) {
  return std::string(FMOTIF_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual` (already normalized) against the golden file;
/// rewrites the golden when FMOTIF_UPDATE_GOLDEN is set.
void ExpectMatchesGolden(const std::string& actual, const std::string& name) {
  const std::string path = GoldenPath(name);
  if (std::getenv("FMOTIF_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to update " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with FMOTIF_UPDATE_GOLDEN=1 to create)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual) << "golden mismatch: " << name;
}

/// Structural JSON well-formedness: balanced braces/brackets outside
/// string literals, at least one top-level object.
bool LooksLikeValidJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool saw_root = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        saw_root = true;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string && saw_root;
}

/// Writes a fixed deterministic trace and returns its path.
std::string WriteTrace(const std::string& name, const std::string& gen_args) {
  const std::string path = TempPath(name);
  const CommandResult gen = RunFmotif("gen " + gen_args + " --out=" + path);
  EXPECT_EQ(0, gen.exit_code) << gen.output;
  return path;
}

TEST(CliUsage, RootHelpExitsZero) {
  const CommandResult r = RunFmotif("--help");
  EXPECT_EQ(0, r.exit_code);
  EXPECT_NE(std::string::npos, r.output.find("usage: fmotif"));
  ExpectMatchesGolden(Normalize(r.output), "help.golden");
}

TEST(CliUsage, PerCommandHelpExitsZero) {
  for (const char* command :
       {"motif", "stream", "fleet", "serve", "topk", "cross", "join",
        "cluster", "stats", "simplify", "gen"}) {
    const CommandResult r = RunFmotif(std::string(command) + " --help");
    EXPECT_EQ(0, r.exit_code) << command;
    EXPECT_NE(std::string::npos, r.output.find("usage: fmotif")) << command;
  }
}

TEST(CliUsage, NoArgumentsIsUsageError) {
  const CommandResult r = RunFmotif("");
  EXPECT_EQ(2, r.exit_code);
  EXPECT_NE(std::string::npos, r.output.find("usage:"));
}

TEST(CliUsage, UnknownCommandIsUsageError) {
  const CommandResult r = RunFmotif("frobnicate");
  EXPECT_EQ(2, r.exit_code);
  EXPECT_NE(std::string::npos, r.output.find("unknown command"));
}

TEST(CliUsage, MissingPositionalIsUsageError) {
  EXPECT_EQ(2, RunFmotif("motif").exit_code);
  EXPECT_EQ(2, RunFmotif("stream").exit_code);
  EXPECT_EQ(2, RunFmotif("fleet").exit_code);
  EXPECT_EQ(2, RunFmotif("cross one.csv").exit_code);
  EXPECT_EQ(2, RunFmotif("join only_one.csv").exit_code);
  EXPECT_EQ(2, RunFmotif("simplify in.csv").exit_code);  // --out required
}

TEST(CliDiagnostics, MissingFileIsRuntimeError) {
  const CommandResult r = RunFmotif("stats /nonexistent/trace.csv");
  EXPECT_EQ(1, r.exit_code);
  EXPECT_NE(std::string::npos, r.output.find("cannot open"));
}

TEST(CliDiagnostics, MalformedCsvNamesTheRow) {
  const std::string path = TempPath("bad.csv");
  std::ofstream(path) << "lat,lon\n39.9,not_a_number\n";
  const CommandResult r = RunFmotif("stats " + path);
  EXPECT_EQ(1, r.exit_code);
  EXPECT_NE(std::string::npos, r.output.find("malformed CSV row 2"));
}

TEST(CliDiagnostics, MalformedGeoJsonIsRuntimeError) {
  const std::string path = TempPath("bad.geojson");
  std::ofstream(path) << "{\"type\": \"Feature\"}";
  const CommandResult r = RunFmotif("stats " + path);
  EXPECT_EQ(1, r.exit_code);
  EXPECT_NE(std::string::npos, r.output.find("coordinates"));
}

TEST(CliGen, DeterministicPerSeed) {
  const CommandResult a = RunFmotif("gen --kind=truck --n=50 --seed=9");
  const CommandResult b = RunFmotif("gen --kind=truck --n=50 --seed=9");
  const CommandResult c = RunFmotif("gen --kind=truck --n=50 --seed=10");
  EXPECT_EQ(0, a.exit_code);
  EXPECT_EQ(a.output, b.output);
  EXPECT_NE(a.output, c.output);
  EXPECT_EQ(0u, a.output.find("lat,lon"));  // CSV header first
}

TEST(CliGen, JsonWithoutOutIsUsageError) {
  const CommandResult r = RunFmotif("gen --json");
  EXPECT_EQ(2, r.exit_code);
  EXPECT_NE(std::string::npos, r.output.find("--out"));
}

TEST(CliGen, UnknownKindIsUsageError) {
  EXPECT_EQ(2, RunFmotif("gen --kind=airplane").exit_code);
}

TEST(CliJson, MotifSchemaAndGolden) {
  const std::string path = WriteTrace("m.csv", "--kind=geolife --n=400 --seed=7");
  const CommandResult r = RunFmotif("motif " + path + " --xi=60 --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output)) << r.output;
  for (const char* key : {"\"command\"", "\"options\"", "\"result\"",
                          "\"distance_m\"", "\"stats\"", "\"pruning_ratio\""}) {
    EXPECT_NE(std::string::npos, r.output.find(key)) << key;
  }
  ExpectMatchesGolden(Normalize(r.output), "motif_json.golden");
}

TEST(CliStream, JsonReportsPerSlideAndSummaryGolden) {
  const std::string path =
      WriteTrace("st.csv", "--kind=geolife --n=200 --seed=7");
  const CommandResult r = RunFmotif(
      "stream " + path + " --window=80 --slide=20 --xi=12 --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output)) << r.output;
  for (const char* key :
       {"\"window_start\"", "\"seeded\"", "\"carried\"", "\"distance_m\"",
        "\"dfd_cells_computed\"", "\"command\"", "\"points_ingested\"",
        "\"seeded_searches\""}) {
    EXPECT_NE(std::string::npos, r.output.find(key)) << key;
  }
  // (200 - 80) / 20 + 1 slides, one report each.
  std::size_t reports = 0;
  for (std::size_t at = 0;
       (at = r.output.find("\"window_start\"", at)) != std::string::npos;
       ++at) {
    ++reports;
  }
  EXPECT_EQ(7u, reports);
  ExpectMatchesGolden(Normalize(r.output), "stream_json.golden");
}

TEST(CliStream, StdinTailsIdenticallyToFileInput) {
  const std::string path =
      WriteTrace("sin.csv", "--kind=geolife --n=160 --seed=9");
  const std::string args = " --window=60 --slide=30 --xi=8";
  const CommandResult from_file = RunFmotif("stream " + path + args);
  ASSERT_EQ(0, from_file.exit_code) << from_file.output;
  // Feed the same rows through a pipe: `fmotif stream -` consumes stdin
  // line by line, so live tailing works (`tail -f x.csv | fmotif stream -`).
  CommandResult from_stdin;
  const std::string command = "cat " + path + " | " +
                              std::string(FMOTIF_BINARY) + " stream -" + args +
                              " 2>&1";
  std::FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(nullptr, pipe);
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    from_stdin.output.append(buffer, n);
  }
  from_stdin.exit_code = WEXITSTATUS(pclose(pipe));
  EXPECT_EQ(0, from_stdin.exit_code) << from_stdin.output;
  EXPECT_EQ(from_file.output, from_stdin.output);
  EXPECT_NE(std::string::npos, from_file.output.find("seeded"));
}

TEST(CliStream, WindowLargerThanInputEmitsNoSlides) {
  const std::string path =
      WriteTrace("small.csv", "--kind=geolife --n=30 --seed=3");
  const CommandResult r =
      RunFmotif("stream " + path + " --window=60 --slide=10 --xi=8");
  EXPECT_EQ(0, r.exit_code) << r.output;
  EXPECT_NE(std::string::npos, r.output.find("0 slides"));
}

TEST(CliStream, InvalidWindowIsRuntimeError) {
  const std::string path =
      WriteTrace("inv.csv", "--kind=geolife --n=50 --seed=3");
  // xi=100 needs a window of at least 204 points.
  const CommandResult r = RunFmotif("stream " + path + " --window=50");
  EXPECT_EQ(1, r.exit_code);
}

TEST(CliStream, DurableRunMatchesPlainRunAndRecoversOnRestart) {
  const std::string path =
      WriteTrace("dur.csv", "--kind=geolife --n=160 --seed=11");
  const std::string state = TempPath("dur_state");
  RunShell("rm -rf " + state);
  const std::string args = " --window=60 --slide=30 --xi=8";

  const CommandResult plain = RunFmotif("stream " + path + args);
  ASSERT_EQ(0, plain.exit_code) << plain.output;
  // A fresh durable run emits bit-identical per-slide reports and the
  // same summary (the journal and snapshots are pure bookkeeping).
  const CommandResult durable =
      RunFmotif("stream " + path + args + " --state-dir=" + state);
  ASSERT_EQ(0, durable.exit_code) << durable.output;
  EXPECT_EQ(plain.output, durable.output);

  // A restart over the same state directory recovers instead of starting
  // cold: snapshot restored, journal tail replayed, stream re-registered.
  const CommandResult resumed =
      RunFmotif("stream " + path + args + " --state-dir=" + state);
  ASSERT_EQ(0, resumed.exit_code) << resumed.output;
  EXPECT_NE(std::string::npos, resumed.output.find("recovered: snapshot=yes"))
      << resumed.output;
}

TEST(CliStream, SigintFlushesSummaryAndSyncsJournal) {
  const std::string path =
      WriteTrace("sig.csv", "--kind=geolife --n=160 --seed=13");
  const std::string state = TempPath("sig_state");
  const std::string args = " --window=60 --slide=30 --xi=8";

  // Feed every row, then hold the pipe open so the tool blocks in its
  // stdin read; SIGINT must end the feed cleanly — summary flushed,
  // journal synced — instead of killing the process mid-report.
  const std::string command =
      "rm -rf " + state + "; ( cat " + path + "; sleep 2 ) | " +
      std::string(FMOTIF_BINARY) + " stream -" + args + " --state-dir=" +
      state + " 2>&1 & pid=$!; sleep 1; kill -INT $pid; wait $pid; "
      "echo rc=$?";
  const CommandResult r = RunShell(command);
  EXPECT_NE(std::string::npos, r.output.find("interrupted: flushing summary"))
      << r.output;
  EXPECT_NE(std::string::npos, r.output.find("160 points")) << r.output;
  EXPECT_NE(std::string::npos, r.output.find("rc=0")) << r.output;

  // The synced journal makes the interrupted run recoverable.
  const CommandResult resumed =
      RunFmotif("stream " + path + args + " --state-dir=" + state);
  ASSERT_EQ(0, resumed.exit_code) << resumed.output;
  EXPECT_NE(std::string::npos, resumed.output.find("recovered: snapshot=yes"))
      << resumed.output;
}

TEST(CliFleet, SigtermEndsTheMultiplexFeedCleanly) {
  const std::string a = WriteTrace("sga.csv", "--kind=geolife --n=80 --seed=5");
  // Multiplex the trace onto stream 0 as `0,lat,lon` rows, then hold the
  // pipe open and SIGTERM the tool: the fleet summary must still appear.
  const std::string command =
      "( sed 's/^/0,/' " + a + "; sleep 2 ) | " +
      std::string(FMOTIF_BINARY) +
      " fleet - --window=60 --slide=30 --xi=8 2>&1 & pid=$!; sleep 1; "
      "kill -TERM $pid; wait $pid; echo rc=$?";
  const CommandResult r = RunShell(command);
  EXPECT_NE(std::string::npos, r.output.find("interrupted: flushing summary"))
      << r.output;
  EXPECT_NE(std::string::npos, r.output.find("1 streams")) << r.output;
  EXPECT_NE(std::string::npos, r.output.find("rc=0")) << r.output;
}

TEST(CliFleet, JsonReportsSlidesJoinDeltasAndSummaryGolden) {
  const std::string a = WriteTrace("fa.csv", "--kind=geolife --n=160 --seed=7");
  const std::string b = WriteTrace("fb.csv", "--kind=geolife --n=160 --seed=7");
  const std::string c = WriteTrace("fc.csv", "--kind=truck --n=160 --seed=9");
  const CommandResult r = RunFmotif("fleet " + a + " " + b + " " + c +
                                    " --window=60 --slide=20 --xi=8 "
                                    "--eps=200 --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output)) << r.output;
  for (const char* key :
       {"\"stream\"", "\"window_start\"", "\"seeded\"", "\"carried\"",
        "\"distance_m\"", "\"join_delta\"", "\"entered\"",
        "\"coalesced_slides\"", "\"late_dropped\"", "\"reordered\"",
        "\"verdicts_carried\"", "\"current_matches\"",
        "\"command\": \"fleet\""}) {
    EXPECT_NE(std::string::npos, r.output.find(key)) << key;
  }
  // 3 streams x ((160 - 60) / 20 + 1) slides, one report each.
  std::size_t reports = 0;
  for (std::size_t at = 0;
       (at = r.output.find("\"window_start\"", at)) != std::string::npos;
       ++at) {
    ++reports;
  }
  EXPECT_EQ(18u, reports);
  ExpectMatchesGolden(Normalize(r.output), "fleet_json.golden");
}

TEST(CliFleet, PerStreamOutputMatchesIndependentStreamRuns) {
  // Each stream's slide lines in the fleet output must be exactly the
  // lines `fmotif stream` prints for that file alone (prefixed s<k>).
  const std::string a = WriteTrace("fp.csv", "--kind=geolife --n=150 --seed=3");
  const std::string args = " --window=60 --slide=15 --xi=8";
  const CommandResult alone = RunFmotif("stream " + a + args);
  const CommandResult fleet = RunFmotif("fleet " + a + args);
  ASSERT_EQ(0, alone.exit_code) << alone.output;
  ASSERT_EQ(0, fleet.exit_code) << fleet.output;
  std::istringstream alone_lines(alone.output);
  std::istringstream fleet_lines(fleet.output);
  std::string expected;
  std::string actual;
  int compared = 0;
  while (std::getline(alone_lines, expected) &&
         std::getline(fleet_lines, actual) && !expected.empty() &&
         expected[0] == '@') {
    EXPECT_EQ("s0 " + expected, actual);
    ++compared;
  }
  EXPECT_GT(compared, 3);
}

TEST(CliFleet, StdinMultiplexRegistersStreamsOnTheFly) {
  const std::string a = WriteTrace("fm.csv", "--kind=geolife --n=120 --seed=5");
  // Build a multiplexed feed: every row of the trace goes to streams 0
  // and 1 alternately... simpler: same row to both streams via awk.
  const std::string command =
      "awk -F, 'NR>1 { print \"0,\" $0; print \"1,\" $0 }' " + a + " | " +
      std::string(FMOTIF_BINARY) + " fleet - --window=50 --slide=10 --xi=6" +
      " 2>&1";
  CommandResult result;
  std::FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(nullptr, pipe);
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  result.exit_code = WEXITSTATUS(pclose(pipe));
  EXPECT_EQ(0, result.exit_code) << result.output;
  EXPECT_NE(std::string::npos, result.output.find("2 streams"));
  EXPECT_NE(std::string::npos, result.output.find("s0 @"));
  EXPECT_NE(std::string::npos, result.output.find("s1 @"));
}

TEST(CliFleet, NonNumericOrHugeStreamIdIsRejectedNotCast) {
  // Stream ids are validated before the double -> size_t cast (the cast
  // alone would be undefined behavior for nan/inf/out-of-range).
  for (const char* bad : {"nan", "inf", "1e300", "-1", "1.5"}) {
    const std::string command =
        std::string("printf '0,45.0,7.0\\n") + bad + ",45.0,7.0\\n' | " +
        std::string(FMOTIF_BINARY) + " fleet - --window=50 --xi=6 2>&1";
    std::FILE* pipe = popen(command.c_str(), "r");
    ASSERT_NE(nullptr, pipe) << bad;
    std::string output;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
      output.append(buffer, n);
    }
    const int exit_code = WEXITSTATUS(pclose(pipe));
    EXPECT_EQ(1, exit_code) << bad << ": " << output;
    EXPECT_NE(std::string::npos, output.find("malformed fleet row 2")) << bad;
  }
}

TEST(CliFleet, BudgetCapsSearchesAndCountsCoalescedSlides) {
  const std::string a = WriteTrace("fb1.csv", "--kind=geolife --n=200 --seed=2");
  const std::string b = WriteTrace("fb2.csv", "--kind=truck --n=200 --seed=4");
  const CommandResult r = RunFmotif(
      "fleet " + a + " " + b +
      " --window=60 --slide=10 --xi=8 --budget=1 --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output));
  // With budget 1 and two always-due streams, slides coalesce.
  EXPECT_EQ(std::string::npos, r.output.find("\"coalesced_slides\": 0,"));
}

TEST(CliJson, TopKReturnsAscendingDistances) {
  const std::string path = WriteTrace("k.csv", "--kind=geolife --n=400 --seed=7");
  const CommandResult r = RunFmotif("topk " + path + " --k=3 --xi=50 --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output));
  EXPECT_NE(std::string::npos, r.output.find("\"results\""));
}

TEST(CliJson, LegacyMotifTopkFlagRoutesToTopK) {
  // The pre-subcommand CLI spelled top-k as `motif --topk=N`; that must
  // keep returning N ranked motifs, not silently fall back to the best.
  const std::string path = WriteTrace("lk.csv", "--kind=geolife --n=400 --seed=7");
  const CommandResult legacy =
      RunFmotif("motif " + path + " --topk=3 --xi=50 --json");
  const CommandResult modern =
      RunFmotif("topk " + path + " --k=3 --xi=50 --json");
  ASSERT_EQ(0, legacy.exit_code) << legacy.output;
  EXPECT_NE(std::string::npos, legacy.output.find("\"results\""));
  EXPECT_EQ(Normalize(legacy.output), Normalize(modern.output));
}

TEST(CliJson, JoinSchemaAndGolden) {
  const std::string a = WriteTrace("ja.csv", "--kind=geolife --n=200 --seed=1");
  const std::string b = WriteTrace("jb.csv", "--kind=geolife --n=200 --seed=1");
  const std::string c = WriteTrace("jc.csv", "--kind=truck --n=200 --seed=2");
  const CommandResult r =
      RunFmotif("join " + a + " " + b + " " + c + " --eps=100 --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output));
  // Identical seeds must match; the truck trace must not.
  EXPECT_NE(std::string::npos, r.output.find("ja.csv"));
  EXPECT_NE(std::string::npos, r.output.find("\"matched\": 1"));
  ExpectMatchesGolden(Normalize(r.output), "join_json.golden");
}

TEST(CliJson, ClusterSchema) {
  const std::string path = WriteTrace("c.csv", "--kind=geolife --n=400 --seed=7");
  const CommandResult r =
      RunFmotif("cluster " + path + " --window=50 --stride=25 --eps=5000 --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output));
  EXPECT_NE(std::string::npos, r.output.find("\"clusters\""));
  EXPECT_NE(std::string::npos, r.output.find("\"window_pairs\""));
}

TEST(CliJson, StatsSchema) {
  const std::string path = WriteTrace("s.csv", "--kind=baboon --n=100 --seed=3");
  const CommandResult r = RunFmotif("stats " + path + " --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output));
  EXPECT_NE(std::string::npos, r.output.find("\"path_length_m\""));
}

TEST(CliJson, SimplifyReportsPointCounts) {
  const std::string in = WriteTrace("sp.csv", "--kind=geolife --n=300 --seed=4");
  const std::string out = TempPath("sp_out.geojson");
  const CommandResult r =
      RunFmotif("simplify " + in + " --tolerance=20 --out=" + out + " --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output));
  EXPECT_NE(std::string::npos, r.output.find("\"points_before\": 300"));
  // The simplified GeoJSON must itself load.
  const CommandResult reread = RunFmotif("stats " + out);
  EXPECT_EQ(0, reread.exit_code) << reread.output;
}

TEST(CliPipeline, ThreadsProduceIdenticalResults) {
  const std::string path = WriteTrace("t.csv", "--kind=geolife --n=400 --seed=7");
  const CommandResult serial = RunFmotif("motif " + path + " --xi=60 --json");
  const CommandResult parallel =
      RunFmotif("motif " + path + " --xi=60 --threads=4 --json");
  ASSERT_EQ(0, serial.exit_code);
  ASSERT_EQ(0, parallel.exit_code);
  // Thread count appears in the echoed options; results must be identical.
  EXPECT_EQ(Normalize(serial.output), Normalize(parallel.output));
}

TEST(CliPipeline, IngestSimplificationChangesPointCount) {
  const std::string path = WriteTrace("is.csv", "--kind=geolife --n=300 --seed=4");
  const CommandResult full = RunFmotif("stats " + path + " --json");
  const CommandResult simplified =
      RunFmotif("stats " + path + " --simplify-tolerance=25 --json");
  ASSERT_EQ(0, full.exit_code);
  ASSERT_EQ(0, simplified.exit_code);
  EXPECT_NE(std::string::npos, full.output.find("\"points\": 300"));
  EXPECT_EQ(std::string::npos, simplified.output.find("\"points\": 300"));
}

TEST(CliPipeline, CrossTrajectoryMotif) {
  const std::string a = WriteTrace("xa.csv", "--kind=geolife --n=250 --seed=1");
  const std::string b = WriteTrace("xb.csv", "--kind=geolife --n=250 --seed=1");
  const CommandResult r = RunFmotif("cross " + a + " " + b + " --xi=60 --json");
  ASSERT_EQ(0, r.exit_code) << r.output;
  EXPECT_TRUE(LooksLikeValidJson(r.output));
  EXPECT_NE(std::string::npos, r.output.find("\"command\": \"cross\""));
}

TEST(CliStream, FinalRowWithoutNewlineIsStillIngested) {
  // A tailed feed often ends without a trailing newline (truncated file,
  // `printf` producer). The final row must still count.
  const std::string path =
      WriteTrace("nonl.csv", "--kind=geolife --n=160 --seed=9");
  const std::string args = " --window=60 --slide=30 --xi=8";
  const CommandResult from_file = RunFmotif("stream " + path + args);
  ASSERT_EQ(0, from_file.exit_code) << from_file.output;
  const CommandResult stripped = RunShell(
      "head -c -1 " + path + " | " + std::string(FMOTIF_BINARY) +
      " stream -" + args + " 2>&1");
  EXPECT_EQ(0, stripped.exit_code) << stripped.output;
  EXPECT_EQ(from_file.output, stripped.output);
  EXPECT_NE(std::string::npos, stripped.output.find("160 points"))
      << stripped.output;
}

TEST(CliFleet, FinalRowWithoutNewlineIsStillIngested) {
  const std::string a =
      WriteTrace("fnl.csv", "--kind=geolife --n=80 --seed=5");
  const std::string args = " --window=60 --slide=30 --xi=8";
  const std::string mux = "sed 's/^/0,/' " + a;
  const CommandResult full = RunShell(
      mux + " | " + std::string(FMOTIF_BINARY) + " fleet -" + args + " 2>&1");
  ASSERT_EQ(0, full.exit_code) << full.output;
  const CommandResult stripped = RunShell(
      mux + " | head -c -1 | " + std::string(FMOTIF_BINARY) + " fleet -" +
      args + " 2>&1");
  EXPECT_EQ(0, stripped.exit_code) << stripped.output;
  EXPECT_EQ(full.output, stripped.output);
  EXPECT_NE(std::string::npos, stripped.output.find("80 points"))
      << stripped.output;
}

TEST(CliServe, SigtermDrainsCheckpointsAndRestartRecovers) {
  // Drives the real binary over a real socket: start `fmotif serve` with
  // a state directory, feed rows and subscribe through bash's /dev/tcp,
  // SIGTERM it mid-session, and check the drain delivered a bye frame,
  // the summary flushed, and a restart recovers from the checkpoint.
  if (RunShell("bash -c 'exit 42'").exit_code != 42) {
    GTEST_SKIP() << "bash unavailable (needed for /dev/tcp client)";
  }
  const std::string state = TempPath("serve_state");
  const std::string err = TempPath("serve_err");
  const std::string script = TempPath("serve_drive.sh");
  const std::string args =
      " --window=16 --slide=4 --xi=2 --state-dir=" + state + " --json";
  {
    std::ofstream out(script);
    out << "set -u\n"
        << "rm -rf " << state << "\n"
        << std::string(FMOTIF_BINARY) << " serve --port=0" << args << " 2> "
        << err << " &\npid=$!\nport=\n"
        << "for i in $(seq 1 100); do\n"
        << "  port=$(sed -n 's/^listening on 127\\.0\\.0\\.1:\\([0-9]*\\)$"
        << "/\\1/p' " << err << ")\n"
        << "  [ -n \"$port\" ] && break\n  sleep 0.1\ndone\n"
        << "[ -n \"$port\" ] || { echo no-port; kill \"$pid\"; exit 1; }\n"
        << "exec 3<>/dev/tcp/127.0.0.1/\"$port\"\n"
        << "printf 'SUB reports\\n' >&3\n"
        << "for i in $(seq 0 39); do printf '0,40.%03d,-70.0\\n' \"$i\" >&3; "
        << "done\nsleep 0.5\nkill -TERM \"$pid\"\n"
        << "cat <&3\n"  // drains frames until the server closes the socket
        << "wait \"$pid\"\necho rc=$?\n";
    ASSERT_TRUE(out.good());
  }
  const CommandResult r = RunShell("bash " + script);
  EXPECT_NE(std::string::npos, r.output.find("{\"type\":\"hello\""))
      << r.output;
  EXPECT_NE(std::string::npos, r.output.find("{\"type\":\"report\""))
      << r.output;
  EXPECT_NE(std::string::npos,
            r.output.find("{\"type\":\"bye\",\"reason\":\"draining\"}"))
      << r.output;
  EXPECT_NE(std::string::npos, r.output.find("\"command\": \"serve\""))
      << r.output;
  EXPECT_NE(std::string::npos, r.output.find("\"points_ingested\": 40"))
      << r.output;
  EXPECT_NE(std::string::npos, r.output.find("rc=0")) << r.output;

  // A restart over the same state directory resumes from the checkpoint
  // the drain wrote, then exits on its own via the runtime valve.
  const CommandResult resumed =
      RunFmotif("serve --port=0" + args + " --max-runtime-ms=300");
  ASSERT_EQ(0, resumed.exit_code) << resumed.output;
  EXPECT_NE(std::string::npos, resumed.output.find("recovered: snapshot="))
      << resumed.output;
  EXPECT_NE(std::string::npos, resumed.output.find("\"streams\": 1"))
      << resumed.output;
}

}  // namespace
