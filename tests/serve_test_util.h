#ifndef FRECHET_MOTIF_TESTS_SERVE_TEST_UTIL_H_
#define FRECHET_MOTIF_TESTS_SERVE_TEST_UTIL_H_

/// Shared helpers for the serve-tier tests: newline-frame splitting,
/// type filtering, and the batch parity oracle.

#include <cstddef>
#include <string>
#include <vector>

#include "geo/metric.h"
#include "serve/motif_server.h"
#include "stream/motif_fleet_engine.h"

namespace frechet_motif {
namespace testing_util {

/// Splits a server byte stream into its newline-delimited frames
/// (terminators stripped). Trailing bytes without a newline are a torn
/// frame and are dropped, exactly as a line-based client would.
inline std::vector<std::string> Frames(const std::string& bytes) {
  std::vector<std::string> frames;
  std::size_t at = 0;
  while (at < bytes.size()) {
    const std::size_t nl = bytes.find('\n', at);
    if (nl == std::string::npos) break;
    frames.push_back(bytes.substr(at, nl - at));
    at = nl + 1;
  }
  return frames;
}

/// Frames whose `"type"` discriminator equals `type`. Relies on the
/// serializers always emitting `type` first.
inline std::vector<std::string> FramesOfType(const std::string& bytes,
                                             const std::string& type) {
  const std::string prefix = "{\"type\":\"" + type + "\"";
  std::vector<std::string> out;
  for (std::string& f : Frames(bytes)) {
    if (f.compare(0, prefix.size(), prefix) == 0) out.push_back(std::move(f));
  }
  return out;
}

inline bool HasFrame(const std::string& bytes, const std::string& type) {
  return !FramesOfType(bytes, type).empty();
}

/// The parity oracle: feeds `arrivals` one at a time to a fresh
/// engine and returns the report frames its updates serialize to —
/// in unbudgeted (parity-exact) mode this is the exact byte stream a
/// `SUB reports` subscriber must observe, regardless of how the
/// arrivals were torn into reads and batches on the wire.
inline std::vector<std::string> OracleReportFrames(
    const FleetOptions& options, const GroundMetric& metric,
    const std::vector<FleetArrival>& arrivals) {
  MotifFleetEngine engine =
      std::move(MotifFleetEngine::Create(options, metric)).value();
  std::vector<std::string> frames;
  for (const FleetArrival& a : arrivals) {
    while (a.stream >= engine.stream_count()) {
      (void)std::move(engine.AddStream()).value();
    }
    FleetReport report = std::move(engine.Ingest({a})).value();
    for (const FleetStreamUpdate& u : report.updates) {
      std::string frame = SerializeReportFrame(u);
      frame.pop_back();  // strip '\n' to match Frames()
      frames.push_back(std::move(frame));
    }
  }
  // No Flush: the server never force-releases reorder buffers either,
  // so the oracle stops at the same released prefix.
  return frames;
}

}  // namespace testing_util
}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_TESTS_SERVE_TEST_UTIL_H_
