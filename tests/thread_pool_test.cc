#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

namespace frechet_motif {
namespace {

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  int calls = 0;
  pool.RunOnAllLanes([&](int lane) {
    EXPECT_EQ(lane, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, RunOnAllLanesVisitsEveryLaneOnce) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> counts(4);
  for (int round = 0; round < 50; ++round) {
    pool.RunOnAllLanes([&](int lane) { ++counts[lane]; });
  }
  for (int lane = 0; lane < 4; ++lane) EXPECT_EQ(counts[lane], 50);
}

TEST(ThreadPoolTest, ChunkRangeIsAStaticPartition) {
  // 10 elements over 4 lanes: sizes 3,3,2,2, contiguous and exhaustive.
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t expected_begin = 0;
  for (int lane = 0; lane < 4; ++lane) {
    ThreadPool::ChunkRange(10, 4, lane, &begin, &end);
    EXPECT_EQ(begin, expected_begin);
    EXPECT_EQ(end - begin, lane < 2 ? 3 : 2);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 10);
  // More lanes than elements: trailing lanes receive empty ranges.
  ThreadPool::ChunkRange(2, 4, 3, &begin, &end);
  EXPECT_EQ(begin, end);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::int64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](int, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t k = lo; k < hi; ++k) ++hits[k];
  });
  for (std::int64_t k = 0; k < n; ++k) EXPECT_EQ(hits[k], 1) << k;
}

TEST(ThreadPoolTest, ParallelForDeterministicLaneAssignment) {
  // The lane that owns an index is a pure function of (n, lanes): two runs
  // must agree — this is what makes per-lane merges reproducible.
  ThreadPool pool(4);
  const std::int64_t n = 97;
  std::vector<int> owner_a(n, -1);
  std::vector<int> owner_b(n, -1);
  pool.ParallelFor(n, [&](int lane, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t k = lo; k < hi; ++k) owner_a[k] = lane;
  });
  pool.ParallelFor(n, [&](int lane, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t k = lo; k < hi; ++k) owner_b[k] = lane;
  });
  EXPECT_EQ(owner_a, owner_b);
  // Ownership is contiguous and non-decreasing in k.
  for (std::int64_t k = 1; k < n; ++k) {
    EXPECT_LE(owner_a[k - 1], owner_a[k]);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int, std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<std::int64_t> sum{0};
  pool.ParallelFor(1, [&](int, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t k = lo; k < hi; ++k) sum += k + 1;
  });
  EXPECT_EQ(sum, 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  // Regression guard for lost-wakeup bugs: many small jobs back to back.
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(8, [&](int, std::int64_t lo, std::int64_t hi) {
      total += hi - lo;
    });
  }
  EXPECT_EQ(total, 200 * 8);
}

TEST(ResolveThreadCountTest, Semantics) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_GE(ResolveThreadCount(0), 1);  // 0 = all hardware threads
}

}  // namespace
}  // namespace frechet_motif
