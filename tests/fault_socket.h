#ifndef FRECHET_MOTIF_TESTS_FAULT_SOCKET_H_
#define FRECHET_MOTIF_TESTS_FAULT_SOCKET_H_

/// Fault-injecting in-memory socket for the serve-tier tests — the
/// transport-side twin of tests/fault_fs.h.
///
/// A `FaultConn` is the test's handle on one connection: the test feeds
/// inbound bytes (in arbitrarily torn chunks), harvests whatever the
/// server wrote, and arms faults. `NewSocket()` mints the server-side
/// `ServeSocket` endpoint; both share state through a `shared_ptr`, so
/// the handle stays valid after the server closes or destroys its end.
///
/// Injectable failure modes, mirroring what a real TCP peer can do but
/// at a reproducible byte:
///
///  * **Short reads/writes** — `set_max_read` / `set_max_write` cap the
///    bytes one call may move, so every protocol boundary is exercised
///    torn.
///  * **EAGAIN storms** — `StallReads(n)` / `StallWrites(n)` make the
///    next n calls return `kWouldBlock` without moving a byte.
///  * **Half-close** — `FeedEof()` delivers a clean `kEof` after the
///    pending inbound bytes drain.
///  * **Reset** — `FailAfterOps(n)` kills the connection on the n-th
///    subsequent Read/Write (CrashAfter-style): that call and every
///    later one return `kError`. `FailNow()` is `FailAfterOps(1)`
///    without waiting for the server to touch the socket.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>

#include "serve/serve_socket.h"

namespace frechet_motif {
namespace testing_util {

class FaultConn {
 public:
  FaultConn() : state_(std::make_shared<State>()) {}

  /// The server-side endpoint. Call once per connection.
  std::unique_ptr<ServeSocket> NewSocket() {
    return std::make_unique<Socket>(state_);
  }

  // --- test-side I/O ------------------------------------------------

  /// Appends bytes the server will see on its next Read.
  void Feed(std::string_view bytes) { state_->inbound.append(bytes); }

  /// Clean peer half-close once the pending inbound bytes drain.
  void FeedEof() { state_->eof_after_inbound = true; }

  /// Everything the server wrote since the last take.
  std::string TakeOutput() {
    std::string out = std::move(state_->outbound);
    state_->outbound.clear();
    return out;
  }

  /// Peek at the pending server output without consuming it.
  const std::string& output() const { return state_->outbound; }

  /// True once the server closed its endpoint.
  bool closed() const { return state_->closed; }

  /// Inbound bytes the server has not read yet.
  std::size_t unread() const { return state_->inbound.size(); }

  // --- fault arming -------------------------------------------------

  void set_max_read(std::size_t cap) { state_->max_read = cap; }
  void set_max_write(std::size_t cap) { state_->max_write = cap; }
  void StallReads(int n) { state_->stalled_reads = n; }
  void StallWrites(int n) { state_->stalled_writes = n; }

  /// The `ops`-th subsequent Read/Write (1 = the very next one) returns
  /// `kError`, as do all later ones.
  void FailAfterOps(std::int64_t ops) { state_->fail_countdown = ops; }
  void FailNow() { state_->failed = true; }
  bool failed() const { return state_->failed; }

  /// Total Read/Write calls the server has made (for sizing
  /// FailAfterOps sweeps).
  std::int64_t op_count() const { return state_->op_count; }

 private:
  struct State {
    std::string inbound;   // fed by the test, consumed by server Reads
    std::string outbound;  // produced by server Writes
    bool eof_after_inbound = false;
    bool closed = false;
    std::size_t max_read = SIZE_MAX;
    std::size_t max_write = SIZE_MAX;
    int stalled_reads = 0;
    int stalled_writes = 0;
    std::int64_t fail_countdown = -1;
    bool failed = false;
    std::int64_t op_count = 0;

    /// Common op prologue: counts the call and fires an armed failure.
    bool BeginOp() {
      if (failed) return false;
      ++op_count;
      if (fail_countdown > 0 && --fail_countdown == 0) failed = true;
      return !failed;
    }
  };

  class Socket : public ServeSocket {
   public:
    explicit Socket(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    ~Socket() override { Close(); }

    IoResult Read(char* buf, std::size_t cap) override {
      if (!state_->BeginOp()) return {IoStatus::kError, 0};
      if (state_->stalled_reads > 0) {
        --state_->stalled_reads;
        return {IoStatus::kWouldBlock, 0};
      }
      if (state_->inbound.empty()) {
        return {state_->eof_after_inbound ? IoStatus::kEof
                                          : IoStatus::kWouldBlock,
                0};
      }
      const std::size_t n = std::min(
          {cap, state_->inbound.size(), state_->max_read});
      std::memcpy(buf, state_->inbound.data(), n);
      state_->inbound.erase(0, n);
      return {IoStatus::kOk, n};
    }

    IoResult Write(const char* data, std::size_t len) override {
      if (!state_->BeginOp()) return {IoStatus::kError, 0};
      if (state_->stalled_writes > 0) {
        --state_->stalled_writes;
        return {IoStatus::kWouldBlock, 0};
      }
      const std::size_t n = std::min(len, state_->max_write);
      state_->outbound.append(data, n);
      return {IoStatus::kOk, n};
    }

    void Close() override { state_->closed = true; }
    std::string peer() const override { return "fault"; }

   private:
    std::shared_ptr<State> state_;
  };

  std::shared_ptr<State> state_;
};

}  // namespace testing_util
}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_TESTS_FAULT_SOCKET_H_
