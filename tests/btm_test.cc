#include "motif/btm.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/options.h"
#include "geo/metric.h"
#include "motif/brute_dp.h"
#include "motif/subset_search.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;
using testing_util::MakeRandomCrossMatrix;
using testing_util::MakeRandomSelfMatrix;

BtmOptions MakeOptions(Index xi, MotifVariant variant, bool relaxed,
                       bool use_end_cross, bool sort_subsets) {
  BtmOptions options;
  options.motif.min_length_xi = xi;
  options.motif.variant = variant;
  options.relaxed = relaxed;
  options.use_end_cross = use_end_cross;
  options.sort_subsets = sort_subsets;
  return options;
}

TEST(BtmTest, RejectsTooShortInput) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(8, 1);
  BtmOptions options =
      MakeOptions(3, MotifVariant::kSingleTrajectory, true, true, true);
  EXPECT_FALSE(BtmMotif(dg, options).ok());
}

/// Every configuration of BTM must return the exact BruteDP distance.
/// Parameters: (n, xi, seed, relaxed, use_end_cross, sort).
class BtmConfigAgreementTest
    : public ::testing::TestWithParam<
          std::tuple<int, int, std::uint64_t, bool, bool, bool>> {};

TEST_P(BtmConfigAgreementTest, MatchesBruteDpSingle) {
  const auto [n, xi, seed, relaxed, end_cross, sorted] = GetParam();
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, seed);
  MotifOptions motif;
  motif.min_length_xi = xi;
  StatusOr<MotifResult> expect = BruteDpMotif(dg, motif);
  BtmOptions options = MakeOptions(xi, MotifVariant::kSingleTrajectory,
                                   relaxed, end_cross, sorted);
  StatusOr<MotifResult> got = BtmMotif(dg, options);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got.value().found);
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance)
      << "n=" << n << " xi=" << xi << " seed=" << seed
      << " relaxed=" << relaxed << " end_cross=" << end_cross
      << " sorted=" << sorted;
}

TEST_P(BtmConfigAgreementTest, MatchesBruteDpCross) {
  const auto [n, xi, seed, relaxed, end_cross, sorted] = GetParam();
  const DistanceMatrix dg = MakeRandomCrossMatrix(n, n + 5, seed);
  MotifOptions motif;
  motif.min_length_xi = xi;
  motif.variant = MotifVariant::kCrossTrajectory;
  StatusOr<MotifResult> expect = BruteDpMotif(dg, motif);
  BtmOptions options = MakeOptions(xi, MotifVariant::kCrossTrajectory,
                                   relaxed, end_cross, sorted);
  StatusOr<MotifResult> got = BtmMotif(dg, options);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, BtmConfigAgreementTest,
    ::testing::Combine(::testing::Values(24, 40), ::testing::Values(2, 4),
                       ::testing::Values(11u, 22u, 33u),
                       ::testing::Bool(),   // relaxed vs tight
                       ::testing::Bool(),   // end-cross pruning
                       ::testing::Bool())); // sorted vs scan order

/// Ablations of the bound set (Figure 16's combinations) must not change
/// the answer.
class BtmBoundSetTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(BtmBoundSetTest, BoundSubsetsAreExact) {
  const auto [cell, cross, band] = GetParam();
  const DistanceMatrix dg = MakeRandomSelfMatrix(40, 77);
  MotifOptions motif;
  motif.min_length_xi = 3;
  StatusOr<MotifResult> expect = BruteDpMotif(dg, motif);
  BtmOptions options;
  options.motif = motif;
  options.use_cell = cell;
  options.use_cross = cross;
  options.use_band = band;
  StatusOr<MotifResult> got = BtmMotif(dg, options);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance)
      << "cell=" << cell << " cross=" << cross << " band=" << band;
}

INSTANTIATE_TEST_SUITE_P(AllBoundSets, BtmBoundSetTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

TEST(BtmTest, AgreesWithBruteDpOnEuclideanWalks) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Trajectory s = MakePlanarWalk(60, seed);
    MotifOptions motif;
    motif.min_length_xi = 5;
    StatusOr<MotifResult> expect = BruteDpMotif(s, Euclidean(), motif);
    BtmOptions options;
    options.motif = motif;
    StatusOr<MotifResult> got = BtmMotif(s, Euclidean(), options);
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance)
        << "seed=" << seed;
  }
}

TEST(BtmTest, PrunesAggressivelyOnStructuredInput) {
  // A planar walk has spatial structure, so BTM should evaluate far fewer
  // subsets than the total.
  const Trajectory s = MakePlanarWalk(120, 4);
  BtmOptions options;
  options.motif.min_length_xi = 10;
  MotifStats stats;
  ASSERT_TRUE(BtmMotif(s, Euclidean(), options, &stats).ok());
  EXPECT_GT(stats.total_subsets, 0);
  EXPECT_LT(stats.subsets_evaluated, stats.total_subsets / 2)
      << "expected >50% of subsets pruned on structured input";
}

TEST(BtmTest, BreakdownClassifiesEverySubset) {
  const Trajectory s = MakePlanarWalk(100, 9);
  BtmOptions options;
  options.motif.min_length_xi = 8;
  options.collect_breakdown = true;
  MotifStats stats;
  ASSERT_TRUE(BtmMotif(s, Euclidean(), options, &stats).ok());
  // Classified prunes + subsets whose bounds pass (the "DFD" class) must
  // cover everything; the DFD class equals total - pruned.
  EXPECT_LE(stats.pruned_total(), stats.total_subsets);
  EXPECT_GE(stats.pruned_total(), 0);
  EXPECT_GT(stats.pruning_ratio(), 0.0);
}

TEST(BtmTest, TightBoundsPruneAtLeastAsManyAsRelaxed) {
  const Trajectory s = MakePlanarWalk(90, 12);
  MotifStats tight_stats;
  MotifStats relaxed_stats;
  BtmOptions tight;
  tight.motif.min_length_xi = 6;
  tight.relaxed = false;
  tight.collect_breakdown = true;
  BtmOptions relaxed = tight;
  relaxed.relaxed = true;
  ASSERT_TRUE(BtmMotif(s, Euclidean(), tight, &tight_stats).ok());
  ASSERT_TRUE(BtmMotif(s, Euclidean(), relaxed, &relaxed_stats).ok());
  EXPECT_GE(tight_stats.pruned_total(), relaxed_stats.pruned_total());
}

/// (1+ε)-approximate mode: result within factor, never better than exact,
/// and ε=0 degenerates to the exact search.
class BtmApproxTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t, bool>> {
};

TEST_P(BtmApproxTest, WithinFactorOfExact) {
  const auto [epsilon, seed, relaxed] = GetParam();
  const Trajectory s = MakePlanarWalk(100, seed);
  MotifOptions motif;
  motif.min_length_xi = 8;
  StatusOr<MotifResult> exact = BruteDpMotif(s, Euclidean(), motif);
  ASSERT_TRUE(exact.ok());
  BtmOptions options;
  options.motif = motif;
  options.relaxed = relaxed;
  options.approximation_epsilon = epsilon;
  StatusOr<MotifResult> approx = BtmMotif(s, Euclidean(), options);
  ASSERT_TRUE(approx.ok()) << approx.status();
  ASSERT_TRUE(approx.value().found);
  EXPECT_GE(approx.value().distance, exact.value().distance - 1e-12);
  EXPECT_LE(approx.value().distance,
            (1.0 + epsilon) * exact.value().distance + 1e-9)
      << "epsilon=" << epsilon << " seed=" << seed;
  if (epsilon == 0.0) {
    EXPECT_DOUBLE_EQ(approx.value().distance, exact.value().distance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsilonSweep, BtmApproxTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.5, 2.0),
                       ::testing::Values(3u, 4u, 5u, 6u),
                       ::testing::Bool()));

TEST(BtmApproxTest, LargerEpsilonEvaluatesNoMoreSubsets) {
  const Trajectory s = MakePlanarWalk(150, 9);
  MotifOptions motif;
  motif.min_length_xi = 12;
  std::int64_t prev_evaluated = std::numeric_limits<std::int64_t>::max();
  for (const double epsilon : {0.0, 0.25, 1.0}) {
    BtmOptions options;
    options.motif = motif;
    options.approximation_epsilon = epsilon;
    MotifStats stats;
    ASSERT_TRUE(BtmMotif(s, Euclidean(), options, &stats).ok());
    EXPECT_LE(stats.subsets_evaluated, prev_evaluated)
        << "epsilon=" << epsilon;
    prev_evaluated = stats.subsets_evaluated;
  }
}

TEST(BtmTest, StatsTotalsAreConsistent) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(30, 21);
  BtmOptions options;
  options.motif.min_length_xi = 2;
  options.collect_breakdown = true;
  MotifStats stats;
  ASSERT_TRUE(BtmMotif(dg, options, &stats).ok());
  EXPECT_EQ(stats.total_subsets, CountValidSubsets(options.motif, 30, 30));
  EXPECT_LE(stats.subsets_evaluated, stats.total_subsets);
}

}  // namespace
}  // namespace frechet_motif
