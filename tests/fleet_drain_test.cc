// Fleet drain concurrency tier: a drain with several due windows fans
// its searches out across the shared ThreadPool (one whole window per
// lane) while applying every side effect serially in drain order — so a
// threaded fleet must be **bit-identical** to a serial one: the same
// report sequence (stream ids, candidates, distances, seeded/carried
// flags, DP-cell counters), the same join deltas, the same aggregated
// stats, the same final window contents. These tests run 16-window
// fleets with threads=1 and threads=4 side by side and assert exactly
// that; they are part of the TSan CI suite, which additionally proves
// the fan-out is race-free.

#include <cstdint>
#include <vector>

#include "data/datasets.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "stream/motif_fleet_engine.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

constexpr std::size_t kStreams = 16;

Trajectory GeoWalk(Index n, std::uint64_t seed) {
  DatasetOptions options;
  options.length = n;
  options.seed = seed;
  return MakeDataset(DatasetKind::kGeoLifeLike, options).value();
}

StreamOptions SmallStreamOptions(int threads) {
  StreamOptions options;
  options.window_length = 70;
  options.slide_step = 10;
  options.min_length_xi = 10;
  options.threads = threads;
  return options;
}

void ExpectReportEq(const FleetReport& expected, const FleetReport& actual) {
  ASSERT_EQ(expected.updates.size(), actual.updates.size());
  for (std::size_t k = 0; k < expected.updates.size(); ++k) {
    const FleetStreamUpdate& e = expected.updates[k];
    const FleetStreamUpdate& a = actual.updates[k];
    ASSERT_EQ(e.stream, a.stream) << "update " << k;
    EXPECT_EQ(e.update.window_start, a.update.window_start) << "update " << k;
    EXPECT_EQ(e.update.motif.best, a.update.motif.best) << "update " << k;
    EXPECT_EQ(e.update.motif.distance, a.update.motif.distance)
        << "update " << k;
    EXPECT_EQ(e.update.seeded, a.update.seeded) << "update " << k;
    EXPECT_EQ(e.update.seed_threshold, a.update.seed_threshold)
        << "update " << k;
    EXPECT_EQ(e.update.carried, a.update.carried) << "update " << k;
    EXPECT_EQ(e.update.stats.dfd_cells_computed,
              a.update.stats.dfd_cells_computed)
        << "update " << k;
  }
  ASSERT_EQ(expected.join_delta.entered.size(),
            actual.join_delta.entered.size());
  ASSERT_EQ(expected.join_delta.left.size(), actual.join_delta.left.size());
  for (std::size_t k = 0; k < expected.join_delta.entered.size(); ++k) {
    EXPECT_EQ(expected.join_delta.entered[k], actual.join_delta.entered[k]);
  }
  for (std::size_t k = 0; k < expected.join_delta.left.size(); ++k) {
    EXPECT_EQ(expected.join_delta.left[k], actual.join_delta.left[k]);
  }
}

void ExpectStatsEq(const FleetStats& expected, const FleetStats& actual) {
  EXPECT_EQ(expected.streams, actual.streams);
  EXPECT_EQ(expected.points_ingested, actual.points_ingested);
  EXPECT_EQ(expected.searches, actual.searches);
  EXPECT_EQ(expected.seeded_searches, actual.seeded_searches);
  EXPECT_EQ(expected.ground_distances_computed,
            actual.ground_distances_computed);
  EXPECT_EQ(expected.dfd_cells_computed, actual.dfd_cells_computed);
  EXPECT_EQ(expected.coalesced_slides, actual.coalesced_slides);
}

MotifFleetEngine MakeFleet(const FleetOptions& options,
                           const GroundMetric& metric) {
  auto fleet = MotifFleetEngine::Create(options, metric);
  EXPECT_TRUE(fleet.ok()) << fleet.status();
  for (std::size_t s = 0; s < kStreams; ++s) {
    EXPECT_EQ(s, fleet.value().AddStream().value());
  }
  return std::move(fleet).value();
}

/// One batch containing `per_stream` fresh points for every stream,
/// blocked stream-by-stream so each window becomes due only at its last
/// in-batch append — the batch-end drain then holds all 16 due windows
/// at once, which is exactly the fan-out path under test.
std::vector<FleetArrival> NextBatch(const std::vector<Trajectory>& walks,
                                    Index* cursor, Index per_stream) {
  std::vector<FleetArrival> batch;
  batch.reserve(kStreams * static_cast<std::size_t>(per_stream));
  for (std::size_t s = 0; s < kStreams; ++s) {
    for (Index k = 0; k < per_stream; ++k) {
      FleetArrival arrival;
      arrival.stream = s;
      arrival.point = walks[s][*cursor + k];
      batch.push_back(arrival);
    }
  }
  *cursor += per_stream;
  return batch;
}

void RunDrainParity(FleetOptions serial_options, FleetOptions threaded_options,
                    Index warmup, Index per_batch, int batches) {
  const HaversineMetric metric;
  std::vector<Trajectory> walks;
  const Index total = warmup + per_batch * static_cast<Index>(batches);
  for (std::size_t s = 0; s < kStreams; ++s) {
    walks.push_back(GeoWalk(total, 9000 + s));
  }

  MotifFleetEngine serial = MakeFleet(serial_options, metric);
  MotifFleetEngine threaded = MakeFleet(threaded_options, metric);

  Index serial_cursor = 0;
  Index threaded_cursor = 0;
  // Warmup batch fills all 16 windows at once: every stream's first
  // search lands in the same batch-end drain.
  auto feed = [&](MotifFleetEngine& fleet, Index* cursor,
                  Index per_stream) -> FleetReport {
    const std::vector<FleetArrival> batch =
        NextBatch(walks, cursor, per_stream);
    auto report = fleet.Ingest(batch);
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(report).value();
  };

  ExpectReportEq(feed(serial, &serial_cursor, warmup),
                 feed(threaded, &threaded_cursor, warmup));
  for (int b = 0; b < batches; ++b) {
    const FleetReport expected = feed(serial, &serial_cursor, per_batch);
    const FleetReport actual = feed(threaded, &threaded_cursor, per_batch);
    ExpectReportEq(expected, actual);
  }

  ExpectStatsEq(serial.stats(), threaded.stats());
  for (std::size_t s = 0; s < kStreams; ++s) {
    const Trajectory a = serial.WindowTrajectory(s);
    const Trajectory b = threaded.WindowTrajectory(s);
    ASSERT_EQ(a.size(), b.size()) << "stream " << s;
    for (Index k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].x, b[k].x) << "stream " << s << " point " << k;
      EXPECT_EQ(a[k].y, b[k].y) << "stream " << s << " point " << k;
    }
  }
  const std::vector<JoinPair> ma = serial.CurrentJoinMatches();
  const std::vector<JoinPair> mb = threaded.CurrentJoinMatches();
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t k = 0; k < ma.size(); ++k) EXPECT_EQ(ma[k], mb[k]);
}

TEST(FleetDrain, SerialAndThreadedDrainsBitIdentical) {
  FleetOptions serial;
  serial.stream = SmallStreamOptions(/*threads=*/1);
  FleetOptions threaded;
  threaded.stream = SmallStreamOptions(/*threads=*/4);
  RunDrainParity(serial, threaded, /*warmup=*/70, /*per_batch=*/10,
                 /*batches=*/8);
}

TEST(FleetDrain, ThreadedDrainsMatchUnderBudgetCoalescingAndJoin) {
  // Budgeted mode defers (and coalesces) all but the 5 dirtiest windows
  // per drain while the ε-join ticks on every searched window — the
  // fan-out prefix is budget-limited and the deferred accounting and
  // join refresh both happen in the serial merge phase. Larger batches
  // (3 slide-steps per stream) force real coalescing.
  FleetOptions serial;
  serial.stream = SmallStreamOptions(/*threads=*/1);
  serial.max_searches_per_drain = 5;
  serial.join_epsilon = 150000.0;
  FleetOptions threaded = serial;
  threaded.stream.threads = 4;
  RunDrainParity(serial, threaded, /*warmup=*/70, /*per_batch=*/30,
                 /*batches=*/5);
}

TEST(FleetDrain, AllHardwareThreadsMatchSerial) {
  // threads=0 resolves to every hardware thread; the chunked one-window-
  // per-lane split changes with the lane count but the merged report
  // must not.
  FleetOptions serial;
  serial.stream = SmallStreamOptions(/*threads=*/1);
  FleetOptions threaded;
  threaded.stream = SmallStreamOptions(/*threads=*/0);
  RunDrainParity(serial, threaded, /*warmup=*/70, /*per_batch=*/10,
                 /*batches=*/4);
}

}  // namespace
}  // namespace frechet_motif
