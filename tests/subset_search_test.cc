#include "motif/subset_search.h"

#include <gtest/gtest.h>

#include "core/options.h"
#include "similarity/frechet.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakeRandomCrossMatrix;
using testing_util::MakeRandomSelfMatrix;

MotifOptions Single(Index xi) {
  MotifOptions o;
  o.min_length_xi = xi;
  return o;
}

MotifOptions Cross(Index xi) {
  MotifOptions o;
  o.min_length_xi = xi;
  o.variant = MotifVariant::kCrossTrajectory;
  return o;
}

TEST(ForEachValidSubsetTest, VisitsExactlyTheValidStarts) {
  const Index n = 18;
  for (const MotifOptions& options : {Single(2), Single(4), Cross(3)}) {
    std::int64_t visited = 0;
    ForEachValidSubset(options, n, n, [&](Index i, Index j) {
      EXPECT_TRUE(IsValidSubsetStart(options, n, n, i, j))
          << "(" << i << "," << j << ")";
      ++visited;
    });
    EXPECT_EQ(visited, CountValidSubsets(options, n, n));
    // Complement check: everything not visited is invalid.
    std::int64_t all_valid = 0;
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < n; ++j) {
        if (IsValidSubsetStart(options, n, n, i, j)) ++all_valid;
      }
    }
    EXPECT_EQ(all_valid, visited);
  }
}

TEST(ForEachValidSubsetTest, ValidStartsAdmitAtLeastOneCandidate) {
  const Index n = 16;
  const MotifOptions options = Single(3);
  ForEachValidSubset(options, n, n, [&](Index i, Index j) {
    // The canonical smallest candidate must be valid.
    const Candidate c{i, static_cast<Index>(i + options.min_length_xi + 1), j,
                      static_cast<Index>(j + options.min_length_xi + 1)};
    EXPECT_TRUE(IsValidCandidate(c, options, n, n)) << c;
  });
}

TEST(EvaluateSubsetTest, FindsTheSubsetOptimum) {
  const Index n = 20;
  const Index xi = 2;
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, 31);
  const MotifOptions options = Single(xi);
  // Evaluate one subset and compare against per-candidate DFD calls.
  const Index i = 1;
  const Index j = 8;
  ASSERT_TRUE(IsValidSubsetStart(options, n, n, i, j));
  SearchState state;
  FrechetScratch scratch;
  EvaluateSubset(dg, options, i, j, nullptr, false, EndpointCaps{}, &state,
                 nullptr, &scratch);
  ASSERT_TRUE(state.found);
  double expect = std::numeric_limits<double>::infinity();
  for (Index ie = i + xi + 1; ie <= j - 1; ++ie) {
    for (Index je = j + xi + 1; je <= n - 1; ++je) {
      expect = std::min(expect,
                        DiscreteFrechetOnRange(dg, i, ie, j, je).value());
    }
  }
  EXPECT_DOUBLE_EQ(state.best_distance, expect);
}

TEST(EvaluateSubsetTest, RespectsEndpointCaps) {
  const Index n = 20;
  const Index xi = 2;
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, 33);
  const MotifOptions options = Single(xi);
  const Index i = 0;
  const Index j = 6;
  // Cap je at 12: the best must equal the optimum over je <= 12.
  EndpointCaps caps;
  caps.je_cap = 12;
  SearchState state;
  FrechetScratch scratch;
  EvaluateSubset(dg, options, i, j, nullptr, false, caps, &state, nullptr,
                 &scratch);
  double expect = std::numeric_limits<double>::infinity();
  for (Index ie = i + xi + 1; ie <= j - 1; ++ie) {
    for (Index je = j + xi + 1; je <= 12; ++je) {
      expect = std::min(expect,
                        DiscreteFrechetOnRange(dg, i, ie, j, je).value());
    }
  }
  ASSERT_TRUE(state.found);
  EXPECT_DOUBLE_EQ(state.best_distance, expect);
}

TEST(EvaluateSubsetTest, ThresholdSemanticsRecordWithoutPruningOptimum) {
  const Index n = 18;
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, 35);
  const MotifOptions options = Single(2);
  const RelaxedBounds rb = RelaxedBounds::Build(dg, options);
  // With end-cross pruning against a tight-but-valid threshold, the subset
  // optimum must still be found if it is <= threshold.
  SearchState no_prune;
  FrechetScratch scratch;
  EvaluateSubset(dg, options, 0, 6, nullptr, false, EndpointCaps{}, &no_prune,
                 nullptr, &scratch);
  ASSERT_TRUE(no_prune.found);
  SearchState pruned;
  pruned.threshold = no_prune.best_distance;  // exact optimum as threshold
  EvaluateSubset(dg, options, 0, 6, &rb, true, EndpointCaps{}, &pruned,
                 nullptr, &scratch);
  ASSERT_TRUE(pruned.found);
  EXPECT_DOUBLE_EQ(pruned.best_distance, no_prune.best_distance);
}

TEST(SearchStateTest, RecordUpdatesBestAndThreshold) {
  SearchState s;
  s.Record(Candidate{0, 5, 7, 12}, 10.0);
  EXPECT_TRUE(s.found);
  EXPECT_DOUBLE_EQ(s.best_distance, 10.0);
  EXPECT_DOUBLE_EQ(s.threshold, 10.0);
  s.Record(Candidate{1, 6, 8, 13}, 12.0);  // worse: no change
  EXPECT_DOUBLE_EQ(s.best_distance, 10.0);
  s.Record(Candidate{2, 7, 9, 14}, 8.0);  // better: both update
  EXPECT_DOUBLE_EQ(s.best_distance, 8.0);
  EXPECT_DOUBLE_EQ(s.threshold, 8.0);
  EXPECT_EQ(s.best.i, 2);
}

TEST(SearchStateTest, EqualDistancesResolveToCanonicalCandidateOrder) {
  // On an exact tie, Record keeps the lexicographically smaller
  // (i, j, ie, je) — regardless of arrival order.
  SearchState first_small;
  first_small.Record(Candidate{1, 6, 8, 13}, 10.0);
  first_small.Record(Candidate{2, 7, 9, 14}, 10.0);  // lex larger: ignored
  EXPECT_EQ(first_small.best.i, 1);

  SearchState first_large;
  first_large.Record(Candidate{2, 7, 9, 14}, 10.0);
  first_large.Record(Candidate{1, 6, 8, 13}, 10.0);  // lex smaller: wins
  EXPECT_EQ(first_large.best.i, 1);
  EXPECT_DOUBLE_EQ(first_large.best_distance, 10.0);

  // The order is (i, j, ie, je) — start pair before endpoints.
  SearchState same_start;
  same_start.Record(Candidate{1, 9, 8, 13}, 10.0);
  same_start.Record(Candidate{1, 6, 8, 14}, 10.0);  // smaller ie wins
  EXPECT_EQ(same_start.best.ie, 6);
  same_start.Record(Candidate{1, 5, 7, 14}, 10.0);  // smaller j beats ie
  EXPECT_EQ(same_start.best.j, 7);
}

TEST(SearchStateTest, CandidateOrderIsShiftInvariant) {
  // The carried path of the streaming engine compares a shifted previous
  // candidate against fresh ones; shifting both sides by the same delta
  // must never change the order.
  const Candidate a{3, 9, 12, 20};
  const Candidate b{3, 9, 13, 19};
  ASSERT_TRUE(CandidateOrderedBefore(a, b));
  Candidate a_shift = a;
  Candidate b_shift = b;
  for (Candidate* c : {&a_shift, &b_shift}) {
    c->i -= 2;
    c->ie -= 2;
    c->j -= 2;
    c->je -= 2;
  }
  EXPECT_TRUE(CandidateOrderedBefore(a_shift, b_shift));
  EXPECT_FALSE(CandidateOrderedBefore(b_shift, a_shift));
}

TEST(ExactTies, AllPathsReportTheCanonicalAchiever) {
  // A constructed matrix with two exactly tied optimal candidates in
  // different subsets: constant distance c everywhere except two zero
  // bottlenecks... simpler: a constant matrix ties *every* candidate at
  // the same DFD, so every algorithm must report the very first subset's
  // first candidate under the canonical order.
  const Index n = 14;
  const Index xi = 2;
  std::vector<double> values(static_cast<std::size_t>(n) * n, 7.0);
  for (Index i = 0; i < n; ++i) {
    values[static_cast<std::size_t>(i) * n + i] = 0.0;
  }
  const DistanceMatrix dg =
      DistanceMatrix::FromValues(n, n, std::move(values)).value();
  const MotifOptions options = Single(xi);

  const RelaxedBounds rb = RelaxedBounds::Build(dg, options);
  std::vector<SubsetEntry> entries;
  ForEachValidSubset(options, n, n, [&](Index i, Index j) {
    entries.push_back(SubsetEntry{0.0, i, j});
  });
  SearchState state;
  RunSubsetQueue(dg, options, &entries, &rb, /*use_end_cross=*/true,
                 /*sort_entries=*/true, &state, nullptr);
  ASSERT_TRUE(state.found);
  EXPECT_DOUBLE_EQ(7.0, state.best_distance);
  // The canonical minimum: the lex-smallest valid candidate overall.
  EXPECT_EQ((Candidate{0, xi + 1, xi + 2, 2 * xi + 3}), state.best);
}

TEST(SearchStateTest, ExternalThresholdDoesNotBlockRecording) {
  SearchState s;
  s.threshold = 5.0;  // e.g. from a group upper bound
  s.Record(Candidate{0, 5, 7, 12}, 6.0);  // worse than threshold but first
  EXPECT_TRUE(s.found);
  EXPECT_DOUBLE_EQ(s.best_distance, 6.0);
  EXPECT_DOUBLE_EQ(s.threshold, 5.0);  // threshold unchanged
}

TEST(RunSubsetQueueTest, SortedAndUnsortedAgree) {
  const Index n = 30;
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, 41);
  const MotifOptions options = Single(3);
  const RelaxedBounds rb = RelaxedBounds::Build(dg, options);
  auto build_entries = [&] {
    std::vector<SubsetEntry> entries;
    ForEachValidSubset(options, n, n, [&](Index i, Index j) {
      entries.push_back(SubsetEntry{
          std::max(dg.Distance(i, j), rb.StartCross(i, j)), i, j});
    });
    return entries;
  };
  std::vector<SubsetEntry> sorted_entries = build_entries();
  std::vector<SubsetEntry> scan_entries = build_entries();
  SearchState sorted_state;
  SearchState scan_state;
  RunSubsetQueue(dg, options, &sorted_entries, &rb, true, true, &sorted_state,
                 nullptr);
  RunSubsetQueue(dg, options, &scan_entries, &rb, true, false, &scan_state,
                 nullptr);
  ASSERT_TRUE(sorted_state.found);
  ASSERT_TRUE(scan_state.found);
  EXPECT_DOUBLE_EQ(sorted_state.best_distance, scan_state.best_distance);
}

}  // namespace
}  // namespace frechet_motif
