// Randomized fleet <-> monitors parity: random window/slide/ξ/stream
// counts, random interleaved arrival schedules, replayed through a
// serial fleet, a threads=4 fleet and N independent monitors in
// lockstep. Every per-stream report sequence must be bit-identical
// across all three — candidate, distance, flags and DP-cell counters —
// and, with the ε-join enabled, the accumulated join deltas must equal
// a from-scratch DfdSelfJoin over the searched window snapshots.

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "data/datasets.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "join/similarity_join.h"
#include "stream/motif_fleet_engine.h"
#include "stream/streaming_motif_monitor.h"
#include "test_util.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

struct FuzzConfig {
  Index window = 0;
  Index slide = 0;
  Index xi = 0;
  Index points = 0;
  std::size_t streams = 0;
  bool haversine = false;
  double join_epsilon = -1.0;
};

FuzzConfig DrawConfig(Rng* rng) {
  FuzzConfig config;
  config.xi = static_cast<Index>(rng->NextInt(6, 16));
  config.window =
      static_cast<Index>(rng->NextInt(2 * config.xi + 4, 2 * config.xi + 50));
  config.slide = static_cast<Index>(rng->NextInt(1, config.window));
  config.points = config.window + static_cast<Index>(rng->NextInt(40, 160));
  config.streams = static_cast<std::size_t>(rng->NextInt(2, 5));
  config.haversine = rng->NextInt(0, 1) == 0;
  // Join on in about half the rounds, with a radius wide enough to flip.
  config.join_epsilon =
      rng->NextInt(0, 1) == 0
          ? (config.haversine ? 3000.0 : 250.0)
          : -1.0;
  return config;
}

Trajectory MakeData(const FuzzConfig& config, std::size_t stream,
                    std::uint64_t seed) {
  if (config.haversine) {
    DatasetOptions options;
    options.length = config.points;
    options.seed = seed + stream;
    return MakeDataset(DatasetKind::kGeoLifeLike, options).value();
  }
  return testing_util::MakePlanarWalk(config.points, seed + stream);
}

TEST(FleetParityFuzz, RandomInterleavedSchedulesMatchMonitorsAndJoin) {
  const std::uint64_t seed = testing_util::FuzzSeed(20260731);
  const int rounds = testing_util::FuzzRounds(5);
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    const FuzzConfig config = DrawConfig(&rng);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " round " << round
                 << ": W=" << config.window
                 << " slide=" << config.slide << " xi=" << config.xi
                 << " n=" << config.points << " streams=" << config.streams
                 << (config.haversine ? " haversine" : " euclidean")
                 << " eps=" << config.join_epsilon);

    const HaversineMetric haversine;
    const EuclideanMetric euclidean;
    const GroundMetric& metric =
        config.haversine ? static_cast<const GroundMetric&>(haversine)
                         : static_cast<const GroundMetric&>(euclidean);

    StreamOptions stream_options;
    stream_options.window_length = config.window;
    stream_options.slide_step = config.slide;
    stream_options.min_length_xi = config.xi;

    std::vector<Trajectory> data;
    for (std::size_t s = 0; s < config.streams; ++s) {
      data.push_back(
          MakeData(config, s, seed + 2000 + 100 * static_cast<std::uint64_t>(
                                                      round)));
    }

    // Random interleaving: a shuffled multiset of per-stream cursors.
    std::vector<std::size_t> schedule;
    for (std::size_t s = 0; s < config.streams; ++s) {
      for (Index k = 0; k < config.points; ++k) schedule.push_back(s);
    }
    for (std::size_t k = schedule.size(); k > 1; --k) {
      std::swap(schedule[k - 1], schedule[static_cast<std::size_t>(
                                     rng.NextInt(0, k - 1))]);
    }

    std::vector<StreamingMotifMonitor> monitors;
    for (std::size_t s = 0; s < config.streams; ++s) {
      monitors.push_back(
          StreamingMotifMonitor::Create(stream_options, metric).value());
    }

    FleetOptions serial_options;
    serial_options.stream = stream_options;
    serial_options.join_epsilon = config.join_epsilon;
    FleetOptions threaded_options = serial_options;
    threaded_options.stream.threads = 4;

    auto serial = MotifFleetEngine::Create(serial_options, metric);
    auto threaded = MotifFleetEngine::Create(threaded_options, metric);
    ASSERT_TRUE(serial.ok()) << serial.status();
    ASSERT_TRUE(threaded.ok()) << threaded.status();
    for (std::size_t s = 0; s < config.streams; ++s) {
      ASSERT_EQ(s, serial.value().AddStream().value());
      ASSERT_EQ(s, threaded.value().AddStream().value());
    }

    std::vector<Index> cursor(config.streams, 0);
    std::vector<JoinPair> accumulated;
    std::map<std::size_t, Trajectory> snapshots;
    int slides = 0;
    for (const std::size_t s : schedule) {
      const Point& p = data[s][cursor[s]++];
      auto mu = monitors[s].Push(p);
      auto su = serial.value().Push(s, p);
      auto tu = threaded.value().Push(s, p);
      ASSERT_TRUE(mu.ok()) << mu.status();
      ASSERT_TRUE(su.ok()) << su.status();
      ASSERT_TRUE(tu.ok()) << tu.status();

      const bool monitor_slid = mu.value().has_value();
      ASSERT_EQ(monitor_slid ? 1u : 0u, su.value().updates.size());
      ASSERT_EQ(monitor_slid ? 1u : 0u, tu.value().updates.size());
      if (!monitor_slid) continue;
      ++slides;

      const StreamUpdate& expected = *mu.value();
      for (const auto* fleet_update :
           {&su.value().updates[0], &tu.value().updates[0]}) {
        ASSERT_EQ(s, fleet_update->stream);
        const StreamUpdate& u = fleet_update->update;
        EXPECT_EQ(expected.window_start, u.window_start);
        EXPECT_EQ(expected.motif.best, u.motif.best);
        EXPECT_EQ(expected.motif.distance, u.motif.distance);
        EXPECT_EQ(expected.seeded, u.seeded);
        EXPECT_EQ(expected.carried, u.carried);
      }
      // DP-effort parity is serial-vs-monitor (threaded batches may
      // legitimately count differently, see RunSubsetQueue's contract).
      EXPECT_EQ(expected.stats.dfd_cells_computed,
                su.value().updates[0].update.stats.dfd_cells_computed);

      // Join bookkeeping on the serial fleet.
      if (config.join_epsilon >= 0.0) {
        snapshots[s] = serial.value().WindowTrajectory(s);
        for (const JoinPair& pair : su.value().join_delta.entered) {
          accumulated.push_back(pair);
        }
        for (const JoinPair& pair : su.value().join_delta.left) {
          const auto at =
              std::find(accumulated.begin(), accumulated.end(), pair);
          ASSERT_NE(accumulated.end(), at) << "left a pair never entered";
          accumulated.erase(at);
        }
        // Serial and threaded fleets agree on the delta too.
        EXPECT_EQ(su.value().join_delta.entered,
                  tu.value().join_delta.entered);
        EXPECT_EQ(su.value().join_delta.left, tu.value().join_delta.left);
      }
    }
    EXPECT_GT(slides, 0);

    // Accumulated join deltas == from-scratch self-join over the
    // last-searched snapshots (dense ids by construction of the check).
    if (config.join_epsilon >= 0.0 && snapshots.size() == config.streams) {
      std::vector<Trajectory> windows;
      for (std::size_t s = 0; s < config.streams; ++s) {
        windows.push_back(snapshots.at(s));
      }
      auto scratch =
          DfdSelfJoin(windows, metric, serial_options.JoinConfig());
      ASSERT_TRUE(scratch.ok()) << scratch.status();
      std::sort(accumulated.begin(), accumulated.end(),
                [](const JoinPair& a, const JoinPair& b) {
                  return a.li != b.li ? a.li < b.li : a.ri < b.ri;
                });
      EXPECT_EQ(scratch.value(), accumulated);
      EXPECT_EQ(scratch.value(), serial.value().CurrentJoinMatches());
    }
  }
}

}  // namespace
}  // namespace frechet_motif
