// A fully hand-worked example in the style of the paper's Figures 5-8:
// one small explicit ground-distance matrix, with every expected value in
// this file derived by hand from the definitions (the derivations are in
// the comments). Guards against regressions in the exact semantics of the
// DFD recurrence and each bound.
//
// The 8x8 symmetric matrix (zero diagonal), xi = 1, single-trajectory:
//
//        0   1   2   3   4   5   6   7
//   0  [ 0   4   6   5   5   3   9   7 ]
//   1  [ 4   0   3   2   2   7   4   8 ]
//   2  [ 6   3   0   5   8   1   6   2 ]
//   3  [ 5   2   5   0   6   9   3   5 ]
//   4  [ 5   2   8   6   0   4   7   6 ]
//   5  [ 3   7   1   9   4   0   5   2 ]
//   6  [ 9   4   6   3   7   5   0   3 ]
//   7  [ 7   8   2   5   6   2   3   0 ]

#include <gtest/gtest.h>

#include <limits>

#include "core/distance_matrix.h"
#include "core/options.h"
#include "motif/bounds.h"
#include "motif/brute_dp.h"
#include "motif/relaxed_bounds.h"
#include "motif/subset_search.h"
#include "similarity/frechet.h"

namespace frechet_motif {
namespace {

DistanceMatrix WorkedMatrix() {
  // clang-format off
  const std::vector<double> values = {
      0, 4, 6, 5, 5, 3, 9, 7,
      4, 0, 3, 2, 2, 7, 4, 8,
      6, 3, 0, 5, 8, 1, 6, 2,
      5, 2, 5, 0, 6, 9, 3, 5,
      5, 2, 8, 6, 0, 4, 7, 6,
      3, 7, 1, 9, 4, 0, 5, 2,
      9, 4, 6, 3, 7, 5, 0, 3,
      7, 8, 2, 5, 6, 2, 3, 0,
  };
  // clang-format on
  return DistanceMatrix::FromValues(8, 8, values).value();
}

MotifOptions XiOne() {
  MotifOptions o;
  o.min_length_xi = 1;
  return o;
}

TEST(WorkedExampleTest, DfdOfCandidate_0_2_4_6) {
  // dF over rows 0..2, columns 4..6. Hand-computed dF table (the gray-path
  // construction of the paper's Figure 6):
  //   dF(0,0,4,4)=5            dF(0,0,4,5)=max(3,5)=5   dF(0,0,4,6)=max(9,5)=9
  //   dF(0,1,4,4)=max(2,5)=5   dF(0,1,4,5)=max(7,min(5,5,5))=7
  //   dF(0,1,4,6)=max(4,min(9,5,7))=5
  //   dF(0,2,4,4)=max(8,5)=8   dF(0,2,4,5)=max(1,min(7,5,8))=5
  //   dF(0,2,4,6)=max(6,min(5,7,5))=6
  const DistanceMatrix dg = WorkedMatrix();
  EXPECT_DOUBLE_EQ(DiscreteFrechetOnRange(dg, 0, 0, 4, 5).value(), 5.0);
  EXPECT_DOUBLE_EQ(DiscreteFrechetOnRange(dg, 0, 1, 4, 5).value(), 7.0);
  EXPECT_DOUBLE_EQ(DiscreteFrechetOnRange(dg, 0, 1, 4, 6).value(), 5.0);
  EXPECT_DOUBLE_EQ(DiscreteFrechetOnRange(dg, 0, 2, 4, 5).value(), 5.0);
  EXPECT_DOUBLE_EQ(DiscreteFrechetOnRange(dg, 0, 2, 4, 6).value(), 6.0);
}

TEST(WorkedExampleTest, NonMonotonicityWitness) {
  // Lemma 1 on this matrix: extending the first subtrajectory from
  // S[0..1] to S[0..2] moves the DFD from S[4..6] as 5 -> 6 (increase),
  // while extending S[0..0] to S[0..1] moves dF against S[4..5] as
  // 5 -> 7 then back down is impossible; instead compare (0,1,4,6)=5 with
  // (0,0,4,6)=9: containment decreased the DFD. Both directions occur.
  const DistanceMatrix dg = WorkedMatrix();
  const double shorter = DiscreteFrechetOnRange(dg, 0, 0, 4, 6).value();
  const double mid = DiscreteFrechetOnRange(dg, 0, 1, 4, 6).value();
  const double longer = DiscreteFrechetOnRange(dg, 0, 2, 4, 6).value();
  EXPECT_GT(shorter, mid);  // 9 > 5: extension decreased
  EXPECT_LT(mid, longer);   // 5 < 6: extension increased
}

TEST(WorkedExampleTest, CellBound) {
  const DistanceMatrix dg = WorkedMatrix();
  // LB_cell(0,4) = dG(0,4) = 5; the candidate (0,2,4,6) has DFD 6 >= 5.
  EXPECT_DOUBLE_EQ(LbCell(dg, 0, 4), 5.0);
}

TEST(WorkedExampleTest, TightCrossBounds) {
  const DistanceMatrix dg = WorkedMatrix();
  const MotifOptions options = XiOne();
  // LB_row(0,4) = min over c in [0, j-1]=[0,3] of dG(c, 5)
  //             = min(3, 7, 1, 9) = 1.
  EXPECT_DOUBLE_EQ(LbRow(dg, options, 0, 4), 1.0);
  // LB_col(0,4) = min over r in [4,7] of dG(1, r) = min(2, 7, 4, 8) = 2.
  EXPECT_DOUBLE_EQ(LbCol(dg, options, 0, 4), 2.0);
  // Cross = max(1, 2) = 2.
  EXPECT_DOUBLE_EQ(LbStartCross(dg, options, 0, 4), 2.0);
}

TEST(WorkedExampleTest, TightBandBoundsWithXiOne) {
  const DistanceMatrix dg = WorkedMatrix();
  const MotifOptions options = XiOne();
  // With xi = 1 the band windows have width one, so band == cross parts.
  EXPECT_DOUBLE_EQ(LbRowBand(dg, options, 0, 4),
                   LbRow(dg, options, 0, 4));
  EXPECT_DOUBLE_EQ(LbColBand(dg, options, 0, 4),
                   LbCol(dg, options, 0, 4));
}

TEST(WorkedExampleTest, RelaxedBoundArrays) {
  const DistanceMatrix dg = WorkedMatrix();
  const RelaxedBounds rb = RelaxedBounds::Build(dg, XiOne());
  // Rmin[4] = min over c in [0, 3] of dG(c, 5) = min(3,7,1,9) = 1.
  EXPECT_DOUBLE_EQ(rb.Rmin(4), 1.0);
  // CminStart[0] = min over r in [3, 7] of dG(1, r)
  //              = min(2, 2, 7, 4, 8) = 2.
  EXPECT_DOUBLE_EQ(rb.CminStart(0), 2.0);
  // Cmin[0] (end-cell form) scans r in [1, 7]: includes dG(1,1)=0.
  EXPECT_DOUBLE_EQ(rb.Cmin(0), 0.0);
  // RminFull[4] = min over the whole column 5 = min(3,7,1,9,4,0,5,2) = 0
  // (the diagonal).
  EXPECT_DOUBLE_EQ(rb.RminFull(4), 0.0);
  // Relaxed start-cross at (0,4): max(CminStart=2, Rmin=1) = 2 — equal to
  // the tight bound on this matrix.
  EXPECT_DOUBLE_EQ(rb.StartCross(0, 4), 2.0);
}

TEST(WorkedExampleTest, EndCrossBound) {
  const DistanceMatrix dg = WorkedMatrix();
  const MotifOptions options = XiOne();
  // LB_end_cross(0,4, ie=1, je=5): candidates of CS(0,4) ending beyond
  // (1,5) cross row 6 at c in [0,3] -> min(9,4,6,3) = 3, and column 2 at
  // r in [4,7] -> min(8,1,6,2) = 1. Bound = max(3,1) = 3.
  EXPECT_DOUBLE_EQ(LbEndCross(dg, options, 0, 4, 1, 5), 3.0);
  // The only candidate of CS(0,4) beyond (1,5) is (0,2,4,6) with DFD 6.
  EXPECT_LE(LbEndCross(dg, options, 0, 4, 1, 5),
            DiscreteFrechetOnRange(dg, 0, 2, 4, 6).value());
}

TEST(WorkedExampleTest, MotifOverTheWholeMatrix) {
  // With n=8, xi=1 the valid subsets are i in [0,2], j in [i+3, 5]; the
  // smallest subset optimum is the motif. BruteDP must agree with the
  // smallest hand-checkable candidates; we verify the reported pair's DFD
  // and validity rather than enumerate all by hand.
  const DistanceMatrix dg = WorkedMatrix();
  StatusOr<MotifResult> r = BruteDpMotif(dg, XiOne());
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().found);
  const Candidate best = r.value().best;
  EXPECT_TRUE(IsValidCandidate(best, XiOne(), 8, 8));
  EXPECT_DOUBLE_EQ(
      r.value().distance,
      DiscreteFrechetOnRange(dg, best.i, best.ie, best.j, best.je).value());
  // Candidate (0,1,3,5): dF table over rows {0,1}, cols {3,4,5}, with
  // dG(0,3)=5, dG(0,4)=5, dG(0,5)=3 giving the first-row prefix maxima
  // 5, 5, 5; then (1,3)=max(2,5)=5, (1,4)=max(2,min(5,5,5))=5,
  // (1,5)=max(7,min(5,5,5))=7. So dF(0,1,3,5)=7; the motif must be <= 7.
  EXPECT_LE(r.value().distance, 7.0);
}

TEST(WorkedExampleTest, SubsetCountMatchesEnumeration) {
  // i in [0, 8-2-4=2], j in [i+3, 5]: i=0 -> j in {3,4,5} (3 subsets),
  // i=1 -> {4,5} (2), i=2 -> {5} (1). Total 6.
  EXPECT_EQ(CountValidSubsets(XiOne(), 8, 8), 6);
}

}  // namespace
}  // namespace frechet_motif
