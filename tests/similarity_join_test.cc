#include "join/similarity_join.h"

#include <gtest/gtest.h>

#include <set>

#include "data/datasets.h"
#include "geo/metric.h"
#include "similarity/frechet.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;

std::vector<Trajectory> MakeCollection(Index count, Index length,
                                       std::uint64_t seed) {
  std::vector<Trajectory> out;
  for (Index k = 0; k < count; ++k) {
    out.push_back(MakePlanarWalk(length, seed + k));
  }
  return out;
}

/// Oracle: exact all-pairs DFD comparison.
std::set<std::pair<std::size_t, std::size_t>> NaiveJoin(
    const std::vector<Trajectory>& left, const std::vector<Trajectory>& right,
    const GroundMetric& metric, double threshold) {
  std::set<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t li = 0; li < left.size(); ++li) {
    for (std::size_t ri = 0; ri < right.size(); ++ri) {
      if (DiscreteFrechet(left[li], right[ri], metric).value() <= threshold) {
        out.insert({li, ri});
      }
    }
  }
  return out;
}

TEST(SimilarityJoinTest, RejectsBadInputs) {
  const std::vector<Trajectory> some = MakeCollection(2, 10, 1);
  JoinOptions options;
  options.threshold = -1.0;
  EXPECT_FALSE(DfdSimilarityJoin(some, some, Euclidean(), options).ok());
  options.threshold = 10.0;
  EXPECT_FALSE(DfdSimilarityJoin({}, some, Euclidean(), options).ok());
  std::vector<Trajectory> with_empty = some;
  with_empty.emplace_back();
  EXPECT_FALSE(
      DfdSimilarityJoin(some, with_empty, Euclidean(), options).ok());
}

class JoinAgreementTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t, bool>> {
};

TEST_P(JoinAgreementTest, MatchesNaiveAllPairs) {
  const auto [threshold, seed, pruning] = GetParam();
  const std::vector<Trajectory> left = MakeCollection(8, 30, seed);
  const std::vector<Trajectory> right = MakeCollection(9, 26, seed + 100);
  JoinOptions options;
  options.threshold = threshold;
  options.use_pruning = pruning;
  JoinStats stats;
  StatusOr<std::vector<JoinPair>> got =
      DfdSimilarityJoin(left, right, Euclidean(), options, &stats);
  ASSERT_TRUE(got.ok()) << got.status();
  std::set<std::pair<std::size_t, std::size_t>> got_set;
  for (const JoinPair& p : got.value()) got_set.insert({p.li, p.ri});
  EXPECT_EQ(got_set, NaiveJoin(left, right, Euclidean(), threshold))
      << "threshold=" << threshold << " seed=" << seed
      << " pruning=" << pruning;
  EXPECT_EQ(stats.pairs_total, 72);
  EXPECT_EQ(stats.matched, static_cast<std::int64_t>(got_set.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, JoinAgreementTest,
    ::testing::Combine(::testing::Values(20.0, 60.0, 150.0, 400.0),
                       ::testing::Values(5u, 6u), ::testing::Bool()));

TEST(SimilarityJoinTest, HaversineBoundsAreSafe) {
  // Same agreement check under the geographic metric, exercising the
  // haversine bbox bound.
  std::vector<Trajectory> collection;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DatasetOptions d;
    d.length = 40;
    d.seed = seed;
    collection.push_back(
        MakeDataset(DatasetKind::kGeoLifeLike, d).value());
  }
  for (const double threshold : {50.0, 300.0, 1500.0}) {
    JoinOptions options;
    options.threshold = threshold;
    StatusOr<std::vector<JoinPair>> pruned =
        DfdSelfJoin(collection, Haversine(), options);
    options.use_pruning = false;
    StatusOr<std::vector<JoinPair>> plain =
        DfdSelfJoin(collection, Haversine(), options);
    ASSERT_TRUE(pruned.ok());
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(pruned.value(), plain.value()) << "threshold=" << threshold;
  }
}

TEST(SimilarityJoinTest, SelfJoinReportsUnorderedPairsOnce) {
  const std::vector<Trajectory> collection = MakeCollection(6, 20, 9);
  JoinOptions options;
  options.threshold = 1e9;  // everything matches
  JoinStats stats;
  StatusOr<std::vector<JoinPair>> got =
      DfdSelfJoin(collection, Euclidean(), options, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 15u);  // C(6,2)
  EXPECT_EQ(stats.pairs_total, 15);
  for (const JoinPair& p : got.value()) EXPECT_LT(p.li, p.ri);
}

TEST(SimilarityJoinTest, StatsPartitionThePairs) {
  const std::vector<Trajectory> left = MakeCollection(10, 24, 21);
  const std::vector<Trajectory> right = MakeCollection(10, 24, 777);
  JoinOptions options;
  options.threshold = 40.0;
  JoinStats stats;
  ASSERT_TRUE(
      DfdSimilarityJoin(left, right, Euclidean(), options, &stats).ok());
  EXPECT_EQ(stats.pairs_total,
            stats.pruned_bbox + stats.pruned_endpoints +
                stats.pruned_hausdorff + stats.decided_exact);
  EXPECT_LE(stats.matched, stats.decided_exact);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(SimilarityJoinTest, PruningActuallyPrunesFarApartInputs) {
  // Two clusters far apart: the bbox stage must resolve all cross pairs.
  std::vector<Trajectory> left;
  std::vector<Trajectory> right;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    left.push_back(MakePlanarWalk(20, seed));
    Trajectory far = MakePlanarWalk(20, seed + 50);
    std::vector<Point> moved;
    for (Index i = 0; i < far.size(); ++i) {
      moved.emplace_back(far[i].x + 1e6, far[i].y);
    }
    right.push_back(Trajectory(std::move(moved)));
  }
  JoinOptions options;
  options.threshold = 100.0;
  JoinStats stats;
  StatusOr<std::vector<JoinPair>> got =
      DfdSimilarityJoin(left, right, Euclidean(), options, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
  EXPECT_EQ(stats.pruned_bbox, 25);
  EXPECT_EQ(stats.decided_exact, 0);
}

// ---------------------------------------------------- decision kernel

TEST(FrechetAtMostTest, AgreesWithExactValue) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Trajectory a = MakePlanarWalk(25, seed);
    const Trajectory b = MakePlanarWalk(30, seed + 40);
    const double exact = DiscreteFrechet(a, b, Euclidean()).value();
    EXPECT_TRUE(
        DiscreteFrechetAtMost(a, b, Euclidean(), exact).value());
    EXPECT_TRUE(
        DiscreteFrechetAtMost(a, b, Euclidean(), exact * 1.5).value());
    EXPECT_FALSE(
        DiscreteFrechetAtMost(a, b, Euclidean(), exact * 0.99).value());
  }
}

TEST(FrechetAtMostTest, NegativeThresholdIsFalse) {
  const Trajectory a = MakePlanarWalk(5, 1);
  EXPECT_FALSE(DiscreteFrechetAtMost(a, a, Euclidean(), -1.0).value());
}

TEST(FrechetAtMostTest, RejectsEmpty) {
  const Trajectory empty;
  const Trajectory one = MakePlanarWalk(3, 2);
  EXPECT_FALSE(DiscreteFrechetAtMost(empty, one, Euclidean(), 1.0).ok());
}

}  // namespace
}  // namespace frechet_motif
