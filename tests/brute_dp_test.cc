#include "motif/brute_dp.h"

#include <gtest/gtest.h>

#include "core/options.h"
#include "geo/metric.h"
#include "motif/subset_search.h"
#include "similarity/frechet.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;
using testing_util::MakeRandomCrossMatrix;
using testing_util::MakeRandomSelfMatrix;

TEST(BruteDpTest, RejectsTooShortInput) {
  MotifOptions options;
  options.min_length_xi = 5;
  const DistanceMatrix dg = MakeRandomSelfMatrix(10, 1);
  StatusOr<MotifResult> r = BruteDpMotif(dg, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BruteDpTest, RejectsNonPositiveXi) {
  MotifOptions options;
  options.min_length_xi = 0;
  const DistanceMatrix dg = MakeRandomSelfMatrix(30, 1);
  EXPECT_FALSE(BruteDpMotif(dg, options).ok());
}

TEST(BruteDpTest, SmallestAdmissibleInputHasExactlyOneCandidate) {
  // n = 2ξ+4 admits exactly the candidate (0, ξ+1, ξ+2, 2ξ+3).
  MotifOptions options;
  options.min_length_xi = 2;
  const Index n = 2 * options.min_length_xi + 4;
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, 7);
  StatusOr<MotifResult> r = BruteDpMotif(dg, options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r.value().found);
  EXPECT_EQ(r.value().best, (Candidate{0, 3, 4, 7}));
  const double expected =
      DiscreteFrechetOnRange(dg, 0, 3, 4, 7).value();
  EXPECT_DOUBLE_EQ(r.value().distance, expected);
}

TEST(BruteDpTest, ResultCandidateIsValidAndDistanceMatchesItsDfd) {
  MotifOptions options;
  options.min_length_xi = 3;
  const DistanceMatrix dg = MakeRandomSelfMatrix(36, 11);
  StatusOr<MotifResult> r = BruteDpMotif(dg, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().found);
  const Candidate c = r.value().best;
  EXPECT_TRUE(IsValidCandidate(c, options, 36, 36)) << c;
  const double exact =
      DiscreteFrechetOnRange(dg, c.i, c.ie, c.j, c.je).value();
  EXPECT_DOUBLE_EQ(r.value().distance, exact);
}

/// The central exactness check for the baseline: BruteDP must agree with
/// the code-path-independent naive oracle over many random matrices.
class BruteDpAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(BruteDpAgreementTest, MatchesNaiveOracleSingle) {
  const auto [n, xi, seed] = GetParam();
  MotifOptions options;
  options.min_length_xi = xi;
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, seed);
  StatusOr<MotifResult> naive = NaiveMotif(dg, options);
  StatusOr<MotifResult> dp = BruteDpMotif(dg, options);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(naive.value().found);
  ASSERT_TRUE(dp.value().found);
  EXPECT_DOUBLE_EQ(dp.value().distance, naive.value().distance);
}

TEST_P(BruteDpAgreementTest, MatchesNaiveOracleCross) {
  const auto [n, xi, seed] = GetParam();
  MotifOptions options;
  options.min_length_xi = xi;
  options.variant = MotifVariant::kCrossTrajectory;
  const DistanceMatrix dg = MakeRandomCrossMatrix(n, n + 3, seed);
  StatusOr<MotifResult> naive = NaiveMotif(dg, options);
  StatusOr<MotifResult> dp = BruteDpMotif(dg, options);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(dp.ok());
  EXPECT_DOUBLE_EQ(dp.value().distance, naive.value().distance);
}

INSTANTIATE_TEST_SUITE_P(
    RandomMatrices, BruteDpAgreementTest,
    ::testing::Combine(::testing::Values(12, 16, 20), ::testing::Values(1, 2, 3),
                       ::testing::Values(101u, 202u, 303u, 404u)));

TEST(BruteDpTest, TrajectoryOverloadMatchesMatrixPath) {
  const Trajectory s = MakePlanarWalk(40, 5);
  MotifOptions options;
  options.min_length_xi = 4;
  StatusOr<MotifResult> via_traj = BruteDpMotif(s, Euclidean(), options);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Euclidean()).value();
  StatusOr<MotifResult> via_matrix = BruteDpMotif(dg, options);
  ASSERT_TRUE(via_traj.ok());
  ASSERT_TRUE(via_matrix.ok());
  EXPECT_DOUBLE_EQ(via_traj.value().distance, via_matrix.value().distance);
}

TEST(BruteDpTest, CrossVariantUsesBothTrajectories) {
  const Trajectory s = MakePlanarWalk(20, 8);
  const Trajectory t = MakePlanarWalk(24, 9);
  MotifOptions options;
  options.min_length_xi = 2;
  options.variant = MotifVariant::kCrossTrajectory;
  StatusOr<MotifResult> r = BruteDpMotif(s, t, Euclidean(), options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().found);
  const Candidate c = r.value().best;
  EXPECT_TRUE(IsValidCandidate(c, options, s.size(), t.size()));
  // Cross variant: no ordering constraint between the two ranges.
  EXPECT_LE(c.ie, s.size() - 1);
  EXPECT_LE(c.je, t.size() - 1);
}

TEST(BruteDpTest, StatsCountSubsetsAndCells) {
  MotifOptions options;
  options.min_length_xi = 2;
  const DistanceMatrix dg = MakeRandomSelfMatrix(20, 3);
  MotifStats stats;
  ASSERT_TRUE(BruteDpMotif(dg, options, &stats).ok());
  EXPECT_EQ(stats.total_subsets, CountValidSubsets(options, 20, 20));
  EXPECT_EQ(stats.subsets_evaluated, stats.total_subsets);
  EXPECT_GT(stats.dfd_cells_computed, 0);
  EXPECT_GT(stats.memory.peak_bytes(), 0u);
}

}  // namespace
}  // namespace frechet_motif
