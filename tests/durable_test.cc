// Unit tests for the durability subsystem: the binary codec, the
// generation-based StateStore (rotation, recovery, corruption
// fallback), PosixFs, and bit-exact snapshot/restore round-trips of
// the monitor, the fleet engine, and DurableFleet. The randomized
// crash schedules live in durable_recovery_fuzz_test.cc.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "durable/durable_fleet.h"
#include "durable/durable_fs.h"
#include "durable/state_store.h"
#include "fault_fs.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "stream/motif_fleet_engine.h"
#include "stream/streaming_motif_monitor.h"
#include "test_util.h"
#include "util/binary_codec.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

using testing_util::FaultFs;

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(BinaryCodec, RoundTripsEveryType) {
  BinaryWriter writer;
  writer.PutU8(0xAB);
  writer.PutU32(0xDEADBEEFu);
  writer.PutU64(0x0123456789ABCDEFull);
  writer.PutI32(-7);
  writer.PutI64(-1234567890123LL);
  writer.PutBool(true);
  writer.PutDouble(-0.0);
  writer.PutDouble(3.141592653589793);
  writer.PutString("journal");
  writer.PutDoubleVector({1.5, -2.5, 1e-300});
  writer.PutI32Vector({-1, 0, 7});

  BinaryReader reader(writer.bytes());
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int32_t i32 = 0;
  std::int64_t i64 = 0;
  bool b = false;
  double d = 0.0;
  std::string s;
  std::vector<double> dv;
  std::vector<std::int32_t> iv;
  ASSERT_TRUE(reader.GetU8(&u8).ok());
  EXPECT_EQ(0xAB, u8);
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  EXPECT_EQ(0xDEADBEEFu, u32);
  ASSERT_TRUE(reader.GetU64(&u64).ok());
  EXPECT_EQ(0x0123456789ABCDEFull, u64);
  ASSERT_TRUE(reader.GetI32(&i32).ok());
  EXPECT_EQ(-7, i32);
  ASSERT_TRUE(reader.GetI64(&i64).ok());
  EXPECT_EQ(-1234567890123LL, i64);
  ASSERT_TRUE(reader.GetBool(&b).ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(reader.GetDouble(&d).ok());
  EXPECT_EQ(0.0, d);
  EXPECT_TRUE(std::signbit(d)) << "-0.0 must survive bit-exactly";
  ASSERT_TRUE(reader.GetDouble(&d).ok());
  EXPECT_EQ(3.141592653589793, d);
  ASSERT_TRUE(reader.GetString(&s).ok());
  EXPECT_EQ("journal", s);
  ASSERT_TRUE(reader.GetDoubleVector(&dv).ok());
  EXPECT_EQ((std::vector<double>{1.5, -2.5, 1e-300}), dv);
  ASSERT_TRUE(reader.GetI32Vector(&iv).ok());
  EXPECT_EQ((std::vector<std::int32_t>{-1, 0, 7}), iv);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryCodec, TruncationReportsDataLoss) {
  BinaryWriter writer;
  writer.PutU64(42);
  const std::string bytes = writer.bytes().substr(0, 5);
  BinaryReader reader(bytes);
  std::uint64_t v = 0;
  EXPECT_EQ(StatusCode::kDataLoss, reader.GetU64(&v).code());
}

TEST(BinaryCodec, CorruptVectorLengthDoesNotAllocate) {
  BinaryWriter writer;
  writer.PutU64(std::uint64_t{1} << 60);  // absurd element count
  BinaryReader reader(writer.bytes());
  std::vector<double> v;
  EXPECT_EQ(StatusCode::kDataLoss, reader.GetDoubleVector(&v).code());
}

TEST(BinaryCodec, VectorLengthOverflowIsDataLoss) {
  // Regression pinned from fuzz_snapshot (the committed input is
  // tests/fuzz/corpus/fuzz_snapshot/overflow-u64-len): a length of
  // 2^61 made the old `Need(size * 8)` byte-count wrap to zero, so the
  // truncation check passed and resize(2^61) threw — violating the
  // library's no-throw contract on corrupt input.
  for (const std::uint64_t size :
       {std::uint64_t{1} << 61, ~std::uint64_t{0},
        (~std::uint64_t{0} >> 3) + 1}) {
    BinaryWriter writer;
    writer.PutU64(size);
    BinaryReader dreader(writer.bytes());
    std::vector<double> dv;
    EXPECT_EQ(StatusCode::kDataLoss, dreader.GetDoubleVector(&dv).code());
    BinaryReader ireader(writer.bytes());
    std::vector<std::int32_t> iv;
    EXPECT_EQ(StatusCode::kDataLoss, ireader.GetI32Vector(&iv).code());
  }
}

TEST(BinaryCodec, Crc32MatchesKnownVector) {
  // The CRC-32/ISO-HDLC check value (zlib/PNG convention).
  EXPECT_EQ(0xCBF43926u, Crc32("123456789"));
  // Chunked == one-shot.
  EXPECT_EQ(Crc32("123456789"), Crc32("456789", Crc32("123")));
}

// ---------------------------------------------------------------------------
// StateStore
// ---------------------------------------------------------------------------

TEST(StateStore, FreshDirectoryThenCheckpointAppendRecover) {
  FaultFs fs(1);
  auto store = StateStore::Open(&fs, "state");
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_FALSE(store.value().recovered().has_snapshot);
  EXPECT_TRUE(store.value().recovered().records.empty());

  // Appending before the first rotation is a protocol violation.
  EXPECT_EQ(StatusCode::kFailedPrecondition,
            store.value().AppendRecord("r").code());

  ASSERT_TRUE(store.value().Checkpoint("snap-one").ok());
  ASSERT_TRUE(store.value().AppendRecord("alpha").ok());
  ASSERT_TRUE(store.value().AppendRecord("beta").ok());
  ASSERT_TRUE(store.value().SyncJournal().ok());

  auto reopened = StateStore::Open(&fs, "state");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE(reopened.value().recovered().has_snapshot);
  EXPECT_EQ("snap-one", reopened.value().recovered().snapshot);
  EXPECT_EQ((std::vector<std::string>{"alpha", "beta"}),
            reopened.value().recovered().records);
}

TEST(StateStore, RotationKeepsOneFallbackGeneration) {
  FaultFs fs(2);
  auto store = StateStore::Open(&fs, "state");
  ASSERT_TRUE(store.ok());
  for (int g = 1; g <= 4; ++g) {
    ASSERT_TRUE(store.value().Checkpoint("snapshot " + std::to_string(g)).ok());
    ASSERT_TRUE(store.value().AppendRecord("g" + std::to_string(g)).ok());
    ASSERT_TRUE(store.value().SyncJournal().ok());
  }
  EXPECT_EQ(4u, store.value().generation());
  // Generations <= 2 are gone; 3 (fallback) and 4 (current) remain.
  EXPECT_FALSE(fs.Exists(store.value().SnapshotPath(2)).value());
  EXPECT_FALSE(fs.Exists(store.value().JournalPath(2)).value());
  EXPECT_TRUE(fs.Exists(store.value().SnapshotPath(3)).value());
  EXPECT_TRUE(fs.Exists(store.value().JournalPath(3)).value());
  EXPECT_TRUE(fs.Exists(store.value().SnapshotPath(4)).value());

  auto reopened = StateStore::Open(&fs, "state");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ("snapshot 4", reopened.value().recovered().snapshot);
  EXPECT_EQ((std::vector<std::string>{"g4"}),
            reopened.value().recovered().records);
}

TEST(StateStore, CorruptNewestSnapshotFallsBackOneGeneration) {
  FaultFs fs(3);
  std::string snap2_path;
  {
    auto store = StateStore::Open(&fs, "state");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Checkpoint("snapshot 1").ok());
    ASSERT_TRUE(store.value().AppendRecord("wal1-a").ok());
    ASSERT_TRUE(store.value().SyncJournal().ok());
    ASSERT_TRUE(store.value().Checkpoint("snapshot 2").ok());
    ASSERT_TRUE(store.value().AppendRecord("wal2-a").ok());
    ASSERT_TRUE(store.value().SyncJournal().ok());
    snap2_path = store.value().SnapshotPath(2);
  }
  // Stable-storage corruption in the newest snapshot: recovery must
  // fall back to generation 1 and rebuild the SAME history from its
  // snapshot plus the full generation-1 journal and the gen-2 tail.
  ASSERT_TRUE(fs.FlipBit(snap2_path, 12345));
  auto reopened = StateStore::Open(&fs, "state");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ("snapshot 1", reopened.value().recovered().snapshot);
  EXPECT_EQ((std::vector<std::string>{"wal1-a", "wal2-a"}),
            reopened.value().recovered().records);
}

TEST(StateStore, TornJournalTailIsDroppedCleanly) {
  FaultFs fs(4);
  {
    auto store = StateStore::Open(&fs, "state");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Checkpoint("base").ok());
    ASSERT_TRUE(store.value().AppendRecord("durable-record").ok());
    ASSERT_TRUE(store.value().SyncJournal().ok());
    // Appended but never synced: a crash may tear it.
    ASSERT_TRUE(store.value().AppendRecord("volatile-record").ok());
  }
  fs.Restart();  // keeps the synced prefix + a random cut of the rest
  auto reopened = StateStore::Open(&fs, "state");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ("base", reopened.value().recovered().snapshot);
  const auto& records = reopened.value().recovered().records;
  ASSERT_GE(records.size(), 1u);
  ASSERT_LE(records.size(), 2u);
  EXPECT_EQ("durable-record", records[0]);
  if (records.size() == 2) {
    EXPECT_EQ("volatile-record", records[1]);
  }
}

TEST(StateStore, AllSnapshotsCorruptIsDataLossNotSilentRestart) {
  FaultFs fs(5);
  std::string snap_path;
  {
    auto store = StateStore::Open(&fs, "state");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Checkpoint("only").ok());
    snap_path = store.value().SnapshotPath(1);
  }
  ASSERT_TRUE(fs.FlipBit(snap_path, 99));
  auto reopened = StateStore::Open(&fs, "state");
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(StatusCode::kDataLoss, reopened.status().code());
}

TEST(PosixFs, SmokeAgainstRealFilesystem) {
  PosixFs fs;
  const std::string dir = ::testing::TempDir() + "fmotif_posixfs_smoke";
  ASSERT_TRUE(fs.CreateDir(dir).ok());
  ASSERT_TRUE(fs.CreateDir(dir).ok()) << "CreateDir must tolerate existing";

  const std::string file = dir + "/a";
  ASSERT_TRUE(fs.WriteFile(file, "hello").ok());
  ASSERT_TRUE(fs.Append(file, " world").ok());
  ASSERT_TRUE(fs.Sync(file).ok());
  EXPECT_EQ("hello world", fs.ReadFile(file).value());

  ASSERT_TRUE(fs.Rename(file, dir + "/b").ok());
  EXPECT_FALSE(fs.Exists(file).value());
  EXPECT_EQ("hello world", fs.ReadFile(dir + "/b").value());
  EXPECT_EQ(StatusCode::kNotFound, fs.ReadFile(file).status().code());

  const auto names = fs.ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ((std::vector<std::string>{"b"}), names.value());

  ASSERT_TRUE(fs.Remove(dir + "/b").ok());
  EXPECT_EQ(StatusCode::kNotFound, fs.Remove(dir + "/b").code());
}

// ---------------------------------------------------------------------------
// Snapshot/restore round-trips
// ---------------------------------------------------------------------------

StreamOptions SmallStreamOptions() {
  StreamOptions options;
  options.min_length_xi = 6;
  options.window_length = 20;  // >= 2*6 + 4
  options.slide_step = 3;
  return options;
}

TEST(MonitorSnapshot, RestoredMonitorContinuesBitIdentically) {
  const StreamOptions options = SmallStreamOptions();
  const EuclideanMetric metric;
  const Trajectory t = testing_util::MakePlanarWalk(90, 7001);

  auto original = StreamingMotifMonitor::Create(options, metric);
  ASSERT_TRUE(original.ok());
  std::string snapshot;
  // Mid-stream split point chosen after several searches so the carried
  // threshold, tie-break state, and achiever arrays are all non-trivial.
  for (Index k = 0; k < 55; ++k) {
    ASSERT_TRUE(original.value().Push(t[k]).ok());
  }
  ASSERT_TRUE(original.value().Snapshot(&snapshot).ok());

  auto restored = StreamingMotifMonitor::Restore(options, metric, snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(original.value().points_seen(), restored.value().points_seen());

  for (Index k = 55; k < t.size(); ++k) {
    auto a = original.value().Push(t[k]);
    auto b = restored.value().Push(t[k]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().has_value(), b.value().has_value());
    if (!a.value().has_value()) continue;
    EXPECT_EQ(a.value()->motif.best, b.value()->motif.best);
    EXPECT_EQ(a.value()->motif.distance, b.value()->motif.distance);
    EXPECT_EQ(a.value()->seeded, b.value()->seeded);
    EXPECT_EQ(a.value()->carried, b.value()->carried);
    EXPECT_EQ(a.value()->stats.dfd_cells_computed,
              b.value()->stats.dfd_cells_computed);
  }
  // Full-state equality, counters and bound achievers included.
  std::string sa;
  std::string sb;
  ASSERT_TRUE(original.value().Snapshot(&sa).ok());
  ASSERT_TRUE(restored.value().Snapshot(&sb).ok());
  EXPECT_EQ(sa, sb);
}

TEST(MonitorSnapshot, OptionMismatchIsRejected) {
  const StreamOptions options = SmallStreamOptions();
  const EuclideanMetric metric;
  auto monitor = StreamingMotifMonitor::Create(options, metric);
  ASSERT_TRUE(monitor.ok());
  std::string snapshot;
  ASSERT_TRUE(monitor.value().Snapshot(&snapshot).ok());

  StreamOptions other = options;
  other.window_length += 1;
  auto restored = StreamingMotifMonitor::Restore(other, metric, snapshot);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, restored.status().code());

  // Trailing garbage is DataLoss, not silent acceptance.
  auto trailing =
      StreamingMotifMonitor::Restore(options, metric, snapshot + "x");
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(StatusCode::kDataLoss, trailing.status().code());
}

TEST(FleetSnapshot, RestoredFleetContinuesBitIdenticallyWithJoin) {
  FleetOptions options;
  options.stream = SmallStreamOptions();
  options.join_epsilon = 250.0;
  options.reorder_capacity = 0;
  const EuclideanMetric metric;

  auto original = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(original.ok());
  std::vector<Trajectory> data;
  for (std::size_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(original.value().AddStream().ok());
    data.push_back(testing_util::MakePlanarWalk(80, 8100 + s));
  }
  Rng rng(9001);
  std::vector<Index> cursor(3, 0);
  // Interleave 150 arrivals, then snapshot mid-flight.
  std::vector<std::size_t> schedule;
  for (int k = 0; k < 240; ++k) {
    schedule.push_back(static_cast<std::size_t>(rng.NextInt(0, 2)));
  }
  std::size_t resume_at = 0;
  int fed = 0;
  while (resume_at < schedule.size() && fed < 150) {
    const std::size_t s = schedule[resume_at++];
    if (cursor[s] >= 80) continue;
    ASSERT_TRUE(original.value()
                    .Push(s, data[s][cursor[s]],
                          1000.0 + static_cast<double>(cursor[s]))
                    .ok());
    ++cursor[s];
    ++fed;
  }

  std::string snapshot;
  ASSERT_TRUE(original.value().Snapshot(&snapshot).ok());
  auto restored = MotifFleetEngine::Restore(options, metric, snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status();

  // Same continuation through both engines: reports, join deltas, and
  // the final manifests must be bit-identical.
  for (std::size_t i = resume_at; i < schedule.size(); ++i) {
    const std::size_t s = schedule[i];
    if (cursor[s] >= 80) continue;
    auto a = original.value().Push(s, data[s][cursor[s]],
                                   1000.0 + static_cast<double>(cursor[s]));
    auto b = restored.value().Push(s, data[s][cursor[s]],
                                   1000.0 + static_cast<double>(cursor[s]));
    ++cursor[s];
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().updates.size(), b.value().updates.size());
    for (std::size_t u = 0; u < a.value().updates.size(); ++u) {
      EXPECT_EQ(a.value().updates[u].stream, b.value().updates[u].stream);
      EXPECT_EQ(a.value().updates[u].update.motif.best,
                b.value().updates[u].update.motif.best);
      EXPECT_EQ(a.value().updates[u].update.motif.distance,
                b.value().updates[u].update.motif.distance);
    }
    EXPECT_EQ(a.value().join_delta.entered, b.value().join_delta.entered);
    EXPECT_EQ(a.value().join_delta.left, b.value().join_delta.left);
  }
  EXPECT_EQ(original.value().CurrentJoinMatches(),
            restored.value().CurrentJoinMatches());
  std::string sa;
  std::string sb;
  ASSERT_TRUE(original.value().Snapshot(&sa).ok());
  ASSERT_TRUE(restored.value().Snapshot(&sb).ok());
  EXPECT_EQ(sa, sb);
}

// ---------------------------------------------------------------------------
// DurableFleet
// ---------------------------------------------------------------------------

TEST(DurableFleet, MirrorsThePlainEngineAndSurvivesReopen) {
  FleetOptions options;
  options.stream = SmallStreamOptions();
  options.join_epsilon = 250.0;
  const EuclideanMetric metric;

  FaultFs fs(11);
  DurableOptions durable;
  durable.state_dir = "state";
  durable.fs = &fs;

  auto plain = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(plain.ok());
  const Trajectory t0 = testing_util::MakePlanarWalk(70, 8801);
  const Trajectory t1 = testing_util::MakePlanarWalk(70, 8802);

  {
    auto fleet = DurableFleet::Open(options, metric, durable);
    ASSERT_TRUE(fleet.ok()) << fleet.status();
    EXPECT_FALSE(fleet.value().recovery().restored_snapshot);
    ASSERT_TRUE(fleet.value().AddStream().ok());
    ASSERT_TRUE(fleet.value().AddStream().ok());
    ASSERT_TRUE(plain.value().AddStream().ok());
    ASSERT_TRUE(plain.value().AddStream().ok());
    for (Index k = 0; k < 40; ++k) {
      for (std::size_t s = 0; s < 2; ++s) {
        const Point& p = (s == 0 ? t0 : t1)[k];
        auto durable_report = fleet.value().Push(s, p);
        auto plain_report = plain.value().Push(s, p);
        ASSERT_TRUE(durable_report.ok()) << durable_report.status();
        ASSERT_TRUE(plain_report.ok());
        // Live reports are the plain engine's, bit for bit.
        ASSERT_EQ(plain_report.value().updates.size(),
                  durable_report.value().updates.size());
        for (std::size_t u = 0; u < plain_report.value().updates.size();
             ++u) {
          EXPECT_EQ(plain_report.value().updates[u].update.motif.best,
                    durable_report.value().updates[u].update.motif.best);
          EXPECT_EQ(plain_report.value().updates[u].update.motif.distance,
                    durable_report.value().updates[u].update.motif.distance);
        }
      }
    }
    // The fleet dies here without any explicit shutdown: everything
    // journaled was synced record-by-record.
  }
  fs.Restart();

  auto reopened = DurableFleet::Open(options, metric, durable);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE(reopened.value().recovery().restored_snapshot ||
              reopened.value().recovery().replayed_records > 0);

  // Continue both; state stays in lockstep with the never-persisted
  // engine through to the end.
  for (Index k = 40; k < 70; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      const Point& p = (s == 0 ? t0 : t1)[k];
      ASSERT_TRUE(reopened.value().Push(s, p).ok());
      ASSERT_TRUE(plain.value().Push(s, p).ok());
    }
  }
  std::string durable_manifest;
  std::string plain_manifest;
  ASSERT_TRUE(reopened.value().engine().Snapshot(&durable_manifest).ok());
  ASSERT_TRUE(plain.value().Snapshot(&plain_manifest).ok());
  EXPECT_EQ(plain_manifest, durable_manifest);
  EXPECT_EQ(plain.value().CurrentJoinMatches(),
            reopened.value().engine().CurrentJoinMatches());
}

TEST(DurableFleet, ReorderedFeedJournalsPostReorderAndSeedsWatermark) {
  FleetOptions options;
  options.stream = SmallStreamOptions();
  options.reorder_capacity = 4;
  const EuclideanMetric metric;

  FaultFs fs(12);
  DurableOptions durable;
  durable.state_dir = "state";
  durable.fs = &fs;

  const Trajectory t = testing_util::MakePlanarWalk(46, 8803);
  {
    auto fleet = DurableFleet::Open(options, metric, durable);
    ASSERT_TRUE(fleet.ok());
    ASSERT_TRUE(fleet.value().AddStream().ok());
    // Out-of-order feed: swap every adjacent pair of timestamps.
    for (Index k = 0; k + 1 < 44; k += 2) {
      ASSERT_TRUE(
          fleet.value().Push(0, t[k + 1], static_cast<double>(k + 1)).ok());
      ASSERT_TRUE(fleet.value().Push(0, t[k], static_cast<double>(k)).ok());
    }
    ASSERT_TRUE(fleet.value().Flush().ok());
    EXPECT_GT(fleet.value().stats().reordered, 0);
  }
  fs.Restart();
  auto reopened = DurableFleet::Open(options, metric, durable);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // Watermark recovered: a pre-watermark arrival is late-dropped, not
  // applied out of order.
  const auto before = reopened.value().engine().ingest_stats(0).released;
  ASSERT_TRUE(reopened.value().Push(0, t[0], 1.0).ok());
  ASSERT_TRUE(reopened.value().Flush().ok());
  EXPECT_EQ(before, reopened.value().engine().ingest_stats(0).released);
  EXPECT_EQ(1, reopened.value().stats().late_dropped);
}

}  // namespace
}  // namespace frechet_motif
