#include "motif/bounds.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/options.h"
#include "motif/relaxed_bounds.h"
#include "motif/subset_search.h"
#include "similarity/frechet.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakeRandomCrossMatrix;
using testing_util::MakeRandomSelfMatrix;

constexpr double kInf = std::numeric_limits<double>::infinity();

MotifOptions SingleOptions(Index xi) {
  MotifOptions o;
  o.min_length_xi = xi;
  return o;
}

MotifOptions CrossOptions(Index xi) {
  MotifOptions o;
  o.min_length_xi = xi;
  o.variant = MotifVariant::kCrossTrajectory;
  return o;
}

/// Soundness sweep: every bound must lower-bound the exact DFD of every
/// valid candidate in its subset, on random (metric-free) matrices.
/// Parameters: (n, xi, seed, single-variant).
class BoundSoundnessTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t, bool>> {
 protected:
  void RunSweep() {
    const auto [n, xi, seed, single] = GetParam();
    const DistanceMatrix dg = single
                                  ? MakeRandomSelfMatrix(n, seed)
                                  : MakeRandomCrossMatrix(n, n + 3, seed);
    const MotifOptions options = single ? SingleOptions(xi) : CrossOptions(xi);
    const RelaxedBounds rb = RelaxedBounds::Build(dg, options);
    const Index m = dg.cols();

    ForEachValidSubset(options, dg.rows(), m, [&](Index i, Index j) {
      const double cell = LbCell(dg, i, j);
      const double cross = LbStartCross(dg, options, i, j);
      const double band_row = LbRowBand(dg, options, i, j);
      const double band_col = LbColBand(dg, options, i, j);
      const double r_cross = rb.StartCross(i, j);
      const double r_band_row = rb.BandRow(j);
      const double r_band_col = rb.BandCol(i);

      // Relaxation property (Lemma 2): relaxed <= tight.
      EXPECT_LE(r_cross, cross) << "at (" << i << "," << j << ")";
      EXPECT_LE(r_band_row, band_row) << "at (" << i << "," << j << ")";
      EXPECT_LE(r_band_col, band_col) << "at (" << i << "," << j << ")";

      // Exhaustively check all valid candidates of this subset.
      const Index ie_max = single ? j - 1 : dg.rows() - 1;
      for (Index ie = i + xi + 1; ie <= ie_max; ++ie) {
        for (Index je = j + xi + 1; je <= m - 1; ++je) {
          const double dfd =
              DiscreteFrechetOnRange(dg, i, ie, j, je).value();
          EXPECT_LE(cell, dfd);
          EXPECT_LE(cross, dfd);
          EXPECT_LE(band_row, dfd);
          EXPECT_LE(band_col, dfd);
          EXPECT_LE(r_cross, dfd);
          EXPECT_LE(r_band_row, dfd);
          EXPECT_LE(r_band_col, dfd);
        }
      }
    });
  }
};

TEST_P(BoundSoundnessTest, AllBoundsBelowExactDfd) { RunSweep(); }

INSTANTIATE_TEST_SUITE_P(
    RandomMatrices, BoundSoundnessTest,
    ::testing::Combine(::testing::Values(14, 18), ::testing::Values(1, 2, 3),
                       ::testing::Values(7u, 8u, 9u), ::testing::Bool()));

/// End-cross bound soundness: LbEndCross(i,j,ie,je) must lower-bound the
/// DFD of every candidate of CS(i,j) ending strictly beyond (ie,je), and so
/// must its relaxed form.
class EndCrossSoundnessTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(EndCrossSoundnessTest, BoundsCandidatesBeyondCell) {
  const auto [seed, single] = GetParam();
  const Index n = 16;
  const Index xi = 2;
  const DistanceMatrix dg = single ? MakeRandomSelfMatrix(n, seed)
                                   : MakeRandomCrossMatrix(n, n, seed);
  const MotifOptions options = single ? SingleOptions(xi) : CrossOptions(xi);
  const RelaxedBounds rb = RelaxedBounds::Build(dg, options);
  ForEachValidSubset(options, n, n, [&](Index i, Index j) {
    const Index ie_max = single ? j - 1 : n - 1;
    for (Index ie = i; ie <= ie_max; ++ie) {
      for (Index je = j; je <= n - 1; ++je) {
        const double lb = LbEndCross(dg, options, i, j, ie, je);
        const double rlb = rb.EndCross(ie, je);
        EXPECT_LE(rlb, lb + 1e-12);
        for (Index ic = std::max<Index>(ie + 1, i + xi + 1); ic <= ie_max;
             ++ic) {
          for (Index jc = std::max<Index>(je + 1, j + xi + 1); jc <= n - 1;
               ++jc) {
            const double dfd =
                DiscreteFrechetOnRange(dg, i, ic, j, jc).value();
            EXPECT_LE(lb, dfd) << "(" << i << "," << j << ") end (" << ie
                               << "," << je << ") cand (" << ic << "," << jc
                               << ")";
            EXPECT_LE(rlb, dfd);
          }
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, EndCrossSoundnessTest,
                         ::testing::Combine(::testing::Values(3u, 4u),
                                            ::testing::Bool()));

TEST(BoundsTest, CellBoundIsStartDistance) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(12, 1);
  EXPECT_DOUBLE_EQ(LbCell(dg, 2, 7), dg.Distance(2, 7));
}

TEST(BoundsTest, OutOfRangeRowGivesInfinity) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(12, 1);
  const MotifOptions options = SingleOptions(2);
  // j+1 beyond the last column -> no candidate can exist.
  EXPECT_EQ(LbRow(dg, options, 0, 11), kInf);
}

TEST(BoundsTest, BandRequiresRoomForXiRows) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(12, 1);
  const MotifOptions options = SingleOptions(4);
  // j + xi exceeds the matrix: the band bound must disqualify the subset.
  EXPECT_EQ(LbRowBand(dg, options, 0, 9), kInf);
}

TEST(SlidingWindowMaxTest, ComputesWindowMaxima) {
  const std::vector<double> v = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::vector<double> out = SlidingWindowMax(v, 3);
  ASSERT_EQ(out.size(), v.size());
  EXPECT_DOUBLE_EQ(out[0], 4);
  EXPECT_DOUBLE_EQ(out[1], 4);
  EXPECT_DOUBLE_EQ(out[2], 5);
  EXPECT_DOUBLE_EQ(out[3], 9);
  EXPECT_DOUBLE_EQ(out[4], 9);
  EXPECT_DOUBLE_EQ(out[5], 9);
  EXPECT_EQ(out[6], kInf);  // window no longer fits
  EXPECT_EQ(out[7], kInf);
}

TEST(SlidingWindowMaxTest, WindowOneIsIdentity) {
  const std::vector<double> v = {2, 7, 1};
  const std::vector<double> out = SlidingWindowMax(v, 1);
  EXPECT_DOUBLE_EQ(out[0], 2);
  EXPECT_DOUBLE_EQ(out[1], 7);
  EXPECT_DOUBLE_EQ(out[2], 1);
}

TEST(SlidingWindowMaxTest, OversizedWindowIsAllInfinity) {
  const std::vector<double> v = {2, 7};
  for (double x : SlidingWindowMax(v, 5)) EXPECT_EQ(x, kInf);
}

TEST(SlidingWindowMaxTest, MatchesNaiveOnRandomInput) {
  Rng rng(99);
  std::vector<double> v(64);
  for (double& x : v) x = rng.NextDouble(0.0, 10.0);
  for (Index w : {2, 5, 13}) {
    const std::vector<double> fast = SlidingWindowMax(v, w);
    for (Index k = 0; k + w <= static_cast<Index>(v.size()); ++k) {
      double expect = -kInf;
      for (Index t = k; t < k + w; ++t) expect = std::max(expect, v[t]);
      EXPECT_DOUBLE_EQ(fast[k], expect) << "w=" << w << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace frechet_motif
