// End-to-end serve tests over real TCP sockets: the poll(2) loop, a
// blocking client, graceful drain on the stop flag, and the durable
// checkpoint/restart resume contract. The protocol itself is covered
// socket-free in serve_test.cc and serve_fault_test.cc; this file
// proves the production transport glues the same pieces together.

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "geo/metric.h"
#include "gtest/gtest.h"
#include "serve/motif_server.h"
#include "serve/serve_loop.h"
#include "serve/serve_socket.h"
#include "serve_test_util.h"
#include "stream/motif_fleet_engine.h"

namespace frechet_motif {
namespace {

using testing_util::FramesOfType;
using testing_util::OracleReportFrames;

ServeOptions SmallOptions() {
  ServeOptions options;
  options.fleet.stream.window_length = 8;
  options.fleet.stream.slide_step = 2;
  options.fleet.stream.min_length_xi = 2;
  return options;
}

std::string Row(std::size_t stream, double lat, double lon) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%zu,%.6f,%.6f\n", stream, lat, lon);
  return buf;
}

FleetArrival Arrival(std::size_t stream, double lat, double lon) {
  FleetArrival a;
  a.stream = stream;
  a.point = LatLon(lat, lon);
  return a;
}

/// Blocking client socket with receive timeouts; sends suppress
/// SIGPIPE so a racing server close cannot kill the test process.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(0, ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& bytes) {
    std::size_t at = 0;
    while (at < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + at, bytes.size() - at,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      at += static_cast<std::size_t>(n);
    }
  }

  /// Half-close: no more ingest; the server flushes and closes.
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until EOF (or the receive timeout, which fails the test).
  std::string ReadAll() {
    std::string all;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) break;
      if (n < 0) {
        ADD_FAILURE() << "recv failed: " << std::strerror(errno);
        break;
      }
      all.append(buf, static_cast<std::size_t>(n));
    }
    return all;
  }

  /// Reads until `frames` newline-terminated frames have arrived.
  std::string ReadFrames(int frames) {
    std::string all;
    char buf[4096];
    int seen = 0;
    while (seen < frames) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) {
        ADD_FAILURE() << "recv ended early: " << std::strerror(errno);
        break;
      }
      for (ssize_t k = 0; k < n; ++k) {
        if (buf[k] == '\n') ++seen;
      }
      all.append(buf, static_cast<std::size_t>(n));
    }
    return all;
  }

 private:
  int fd_ = -1;
};

/// Runs RunServeLoop on a background thread until Stop() is called.
class LoopRunner {
 public:
  LoopRunner(MotifServer& server, ServeListener& listener) {
    options_.stop_atomic = &stop_;
    options_.poll_interval_ms = 20;
    thread_ = std::thread([this, &server, &listener] {
      status_ = RunServeLoop(server, listener, options_);
    });
  }

  Status Stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    return status_;
  }

  ~LoopRunner() { (void)Stop(); }

 private:
  std::atomic<bool> stop_{false};
  ServeLoopOptions options_;
  std::thread thread_;
  Status status_ = Status::Ok();
};

TEST(ServeIntegration, RealSocketFeedAndSubscribeMatchesOracle) {
  const ServeOptions options = SmallOptions();
  MotifServer server =
      std::move(MotifServer::Create(options, Euclidean())).value();
  PosixListener listener =
      std::move(PosixListener::Create("127.0.0.1", 0)).value();
  ASSERT_GT(listener.port(), 0);

  std::vector<FleetArrival> arrivals;
  std::string wire = "SUB reports\n";
  for (int i = 0; i < 30; ++i) {
    const double lat = 40.0 + 0.002 * (i % 5);
    const double lon = -70.0 + 0.001 * i;
    arrivals.push_back(Arrival(0, lat, lon));
    wire += Row(0, lat, lon);
  }

  std::string received;
  {
    LoopRunner loop(server, listener);
    Client client(listener.port());
    client.Send(wire);
    client.ShutdownWrite();
    received = client.ReadAll();
    ASSERT_TRUE(loop.Stop().ok());
  }

  const std::vector<std::string> want =
      OracleReportFrames(options.fleet, Euclidean(), arrivals);
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(want, FramesOfType(received, "report"));
  EXPECT_EQ(30, server.stats().points_ingested);
  EXPECT_EQ(1, server.stats().closed_by_peer);
  ASSERT_TRUE(server.Shutdown().ok());
}

TEST(ServeIntegration, StopFlagDrainsConnectedSubscriber) {
  MotifServer server =
      std::move(MotifServer::Create(SmallOptions(), Euclidean())).value();
  PosixListener listener =
      std::move(PosixListener::Create("127.0.0.1", 0)).value();

  LoopRunner loop(server, listener);
  Client client(listener.port());
  client.Send("SUB reports\n");
  // hello + subscribed prove the connection is live before the drain.
  const std::string pre = client.ReadFrames(2);
  EXPECT_TRUE(testing_util::HasFrame(pre, "hello"));

  ASSERT_TRUE(loop.Stop().ok());  // SIGTERM equivalent: stop flag up
  // The drain delivered a bye and closed the socket (EOF).
  const std::string post = client.ReadAll();
  EXPECT_TRUE(testing_util::HasFrame(post, "bye"));
  EXPECT_TRUE(server.DrainComplete());
  ASSERT_TRUE(server.Shutdown().ok());
}

TEST(ServeIntegration, DurableDrainThenRestartResumesBitIdentically) {
  char tmpl[] = "/tmp/fmotif_serve_XXXXXX";
  ASSERT_NE(nullptr, ::mkdtemp(tmpl));
  const std::string state_dir = std::string(tmpl) + "/state";

  ServeOptions options = SmallOptions();
  options.durable.state_dir = state_dir;
  options.durable.checkpoint_interval_records = 8;

  std::vector<FleetArrival> all;
  std::vector<std::string> wire_rows;
  for (int i = 0; i < 60; ++i) {
    const double lat = 40.0 + 0.002 * (i % 7);
    const double lon = -70.0 + 0.001 * i;
    all.push_back(Arrival(0, lat, lon));
    wire_rows.push_back(Row(0, lat, lon));
  }
  const int kSplit = 28;  // mid-window, not a checkpoint boundary

  std::string phase1;
  {
    MotifServer server =
        std::move(MotifServer::Create(options, Euclidean())).value();
    PosixListener listener =
        std::move(PosixListener::Create("127.0.0.1", 0)).value();
    LoopRunner loop(server, listener);
    Client client(listener.port());
    std::string wire = "SUB reports\n";
    for (int i = 0; i < kSplit; ++i) wire += wire_rows[i];
    client.Send(wire);
    client.ShutdownWrite();
    phase1 = client.ReadAll();
    ASSERT_TRUE(loop.Stop().ok());
    ASSERT_TRUE(server.Shutdown().ok());  // checkpoint + sync
  }

  std::string phase2;
  {
    MotifServer server =
        std::move(MotifServer::Create(options, Euclidean())).value();
    ASSERT_NE(nullptr, server.durable());
    // Recovery rebuilt the fleet to the acknowledged phase-1 state.
    EXPECT_EQ(1u, server.engine().stream_count());
    EXPECT_EQ(kSplit, static_cast<int>(server.fleet_stats().points_ingested));
    PosixListener listener =
        std::move(PosixListener::Create("127.0.0.1", 0)).value();
    LoopRunner loop(server, listener);
    Client client(listener.port());
    std::string wire = "SUB reports\n";
    for (int i = kSplit; i < 60; ++i) wire += wire_rows[i];
    client.Send(wire);
    client.ShutdownWrite();
    phase2 = client.ReadAll();
    ASSERT_TRUE(loop.Stop().ok());
    ASSERT_TRUE(server.Shutdown().ok());
  }

  // The concatenated report streams of the interrupted pair are
  // bit-identical to one uninterrupted oracle over the full feed.
  std::vector<std::string> got = FramesOfType(phase1, "report");
  for (std::string& f : FramesOfType(phase2, "report")) {
    got.push_back(std::move(f));
  }
  const std::vector<std::string> want =
      OracleReportFrames(options.fleet, Euclidean(), all);
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(want, got);
}

}  // namespace
}  // namespace frechet_motif
