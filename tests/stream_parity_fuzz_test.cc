// Randomized streaming <-> batch parity: random window/slide/ξ schedules
// over generated trajectories, replayed through a serial monitor and a
// threads=4 monitor in lockstep. Every emitted update must be
// bit-identical — candidate and distance — to a from-scratch FindMotif
// (the relaxed bounding search) on the identical window, and the two
// monitors must agree with each other on every slide.

#include <optional>
#include <vector>

#include "core/distance_matrix.h"
#include "data/datasets.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "motif/motif.h"
#include "motif/relaxed_bounds.h"
#include "similarity/frechet.h"
#include "stream/streaming_motif_monitor.h"
#include "test_util.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

struct FuzzConfig {
  Index window = 0;
  Index slide = 0;
  Index xi = 0;
  Index points = 0;
  bool haversine = false;
  std::uint64_t data_seed = 0;
};

FuzzConfig DrawConfig(Rng* rng, std::uint64_t data_seed) {
  FuzzConfig config;
  config.xi = static_cast<Index>(rng->NextInt(6, 24));
  // W must admit a valid single-trajectory candidate: W >= 2ξ + 4.
  config.window = static_cast<Index>(
      rng->NextInt(2 * config.xi + 4, 2 * config.xi + 80));
  config.slide = static_cast<Index>(rng->NextInt(1, config.window));
  config.points =
      config.window + static_cast<Index>(rng->NextInt(50, 260));
  config.haversine = rng->NextInt(0, 1) == 0;
  config.data_seed = data_seed;
  return config;
}

Trajectory MakeData(const FuzzConfig& config) {
  if (config.haversine) {
    DatasetOptions options;
    options.length = config.points;
    options.seed = config.data_seed;
    return MakeDataset(DatasetKind::kGeoLifeLike, options).value();
  }
  return testing_util::MakePlanarWalk(config.points, config.data_seed);
}

TEST(StreamParityFuzz, RandomSchedulesMatchBatchSerialAndThreaded) {
  const std::uint64_t seed = testing_util::FuzzSeed(20260730);
  const int rounds = testing_util::FuzzRounds(6);
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    const FuzzConfig config = DrawConfig(&rng, seed + 1000 + round);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " round " << round
                 << ": W=" << config.window
                 << " slide=" << config.slide << " xi=" << config.xi
                 << " n=" << config.points
                 << (config.haversine ? " haversine" : " euclidean"));
    const Trajectory t = MakeData(config);
    const HaversineMetric haversine;
    const EuclideanMetric euclidean;
    const GroundMetric& metric =
        config.haversine ? static_cast<const GroundMetric&>(haversine)
                         : static_cast<const GroundMetric&>(euclidean);

    StreamOptions serial_options;
    serial_options.window_length = config.window;
    serial_options.slide_step = config.slide;
    serial_options.min_length_xi = config.xi;
    serial_options.threads = 1;
    StreamOptions threaded_options = serial_options;
    threaded_options.threads = 4;

    auto serial = StreamingMotifMonitor::Create(serial_options, metric);
    auto threaded = StreamingMotifMonitor::Create(threaded_options, metric);
    ASSERT_TRUE(serial.ok()) << serial.status();
    ASSERT_TRUE(threaded.ok()) << threaded.status();

    int slides = 0;
    for (Index k = 0; k < t.size(); ++k) {
      auto su = serial.value().Push(t[k]);
      auto tu = threaded.value().Push(t[k]);
      ASSERT_TRUE(su.ok()) << su.status();
      ASSERT_TRUE(tu.ok()) << tu.status();
      ASSERT_EQ(su.value().has_value(), tu.value().has_value());
      if (!su.value().has_value()) continue;
      ++slides;

      // Serial and threads=4 agree bit for bit, including seeding and
      // the carried flag.
      EXPECT_EQ(su.value()->motif.best, tu.value()->motif.best);
      EXPECT_EQ(su.value()->motif.distance, tu.value()->motif.distance);
      EXPECT_EQ(su.value()->seeded, tu.value()->seeded);
      EXPECT_EQ(su.value()->carried, tu.value()->carried);

      // Both agree with the from-scratch baseline on the same window —
      // candidate and distance unconditionally, carried slides and exact
      // ties included (the canonical tie-break is shared by both paths).
      const Trajectory window = serial.value().WindowTrajectory();
      auto scratch =
          FindMotif(window, metric, serial_options.BaselineOptions());
      ASSERT_TRUE(scratch.ok()) << scratch.status();
      EXPECT_EQ(scratch.value().found, su.value()->motif.found);
      EXPECT_EQ(scratch.value().distance, su.value()->motif.distance);
      EXPECT_EQ(scratch.value().best, su.value()->motif.best)
          << (su.value()->carried ? "carried slide" : "fresh slide");
    }
    EXPECT_GT(slides, 0);
  }
}

TEST(StreamParityFuzz, RandomCrossInterleavings) {
  const std::uint64_t seed = testing_util::FuzzSeed(424242);
  const int rounds = testing_util::FuzzRounds(3);
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    const Index xi = static_cast<Index>(rng.NextInt(6, 16));
    StreamOptions options;
    options.min_length_xi = xi;
    options.window_length = static_cast<Index>(rng.NextInt(xi + 8, 70));
    options.slide_step =
        static_cast<Index>(rng.NextInt(1, options.window_length));
    options.threads = round == 2 ? 4 : 1;
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " round " << round
                 << ": W=" << options.window_length
                 << " slide=" << options.slide_step << " xi=" << xi);

    DatasetOptions data;
    data.length = 260;
    data.seed = seed + 5000 + round;
    const Trajectory a =
        MakeDataset(DatasetKind::kGeoLifeLike, data).value();
    data.seed = seed + 6000 + round;
    const Trajectory b = MakeDataset(DatasetKind::kTruckLike, data).value();
    const HaversineMetric metric;

    auto monitor = StreamingMotifMonitor::CreateCross(options, metric);
    ASSERT_TRUE(monitor.ok()) << monitor.status();
    Index ka = 0;
    Index kb = 0;
    int slides = 0;
    while (ka < a.size() || kb < b.size()) {
      const bool push_first =
          kb >= b.size() || (ka < a.size() && rng.NextInt(0, 1) == 0);
      auto push = push_first ? monitor.value().Push(a[ka++])
                             : monitor.value().PushSecond(b[kb++]);
      ASSERT_TRUE(push.ok()) << push.status();
      if (!push.value().has_value()) continue;
      ++slides;
      const Trajectory wa = monitor.value().WindowTrajectory();
      const Trajectory wb = monitor.value().SecondWindowTrajectory();
      auto scratch = FindMotif(wa, wb, metric, options.BaselineOptions());
      ASSERT_TRUE(scratch.ok()) << scratch.status();
      EXPECT_EQ(scratch.value().distance, push.value()->motif.distance);
      EXPECT_EQ(scratch.value().best, push.value()->motif.best)
          << (push.value()->carried ? "carried slide" : "fresh slide");
    }
    EXPECT_GT(slides, 0);
  }
}

TEST(StreamParityFuzz, CrossBoundsMatchFreshBuildUnderTwoSidedSchedules) {
  // The cross-mode incremental bound maintenance (SlideCross with two
  // independent shifts): random two-sided append schedules — including
  // heavily one-sided ones, so slides see (shift_row, 0), (0, shift_col)
  // and everything between — with the bound arrays the next search uses
  // compared against a fresh RelaxedBounds::Build over the identical
  // window pair after every slide. Equality is exact (==), not
  // approximate: a running min over doubles does not depend on the
  // reduction order, so carry + rescan must reproduce Build bit for bit.
  const std::uint64_t seed = testing_util::FuzzSeed(20260812);
  const int rounds = testing_util::FuzzRounds(4);
  Rng rng(seed);
  const EuclideanMetric metric;
  for (int round = 0; round < rounds; ++round) {
    const Index xi = static_cast<Index>(rng.NextInt(5, 14));
    StreamOptions options;
    options.min_length_xi = xi;
    options.window_length = static_cast<Index>(rng.NextInt(xi + 6, 60));
    options.slide_step =
        static_cast<Index>(rng.NextInt(1, options.window_length));
    // Per-round bias of the side coin: round 0 feeds mostly side 0,
    // round 1 mostly side 1, later rounds are balanced.
    const int side0_percent =
        round == 0 ? 85 : (round == 1 ? 15 : static_cast<int>(
                                                 rng.NextInt(30, 70)));
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " round " << round
                 << ": W=" << options.window_length
                 << " slide=" << options.slide_step << " xi=" << xi
                 << " side0%=" << side0_percent);

    const Index points = 220;
    const Trajectory a =
        testing_util::MakePlanarWalk(points, seed + 8000 + round);
    const Trajectory b =
        testing_util::MakePlanarWalk(points, seed + 9000 + round);

    auto monitor = StreamingMotifMonitor::CreateCross(options, metric);
    ASSERT_TRUE(monitor.ok()) << monitor.status();
    MotifOptions motif;
    motif.variant = MotifVariant::kCrossTrajectory;
    motif.min_length_xi = xi;

    Index ka = 0;
    Index kb = 0;
    int checked = 0;
    while (ka < a.size() || kb < b.size()) {
      const bool push_first =
          kb >= b.size() ||
          (ka < a.size() &&
           rng.NextInt(1, 100) <= static_cast<std::int64_t>(side0_percent));
      auto push = push_first ? monitor.value().Push(a[ka++])
                             : monitor.value().PushSecond(b[kb++]);
      ASSERT_TRUE(push.ok()) << push.status();
      if (!push.value().has_value()) continue;

      const Trajectory wa = monitor.value().WindowTrajectory();
      const Trajectory wb = monitor.value().SecondWindowTrajectory();
      const DistanceMatrix dg = DistanceMatrix::Build(wa, wb, metric).value();
      const RelaxedBounds fresh = RelaxedBounds::Build(dg, motif);
      const RelaxedBounds maintained = monitor.value().CurrentBounds();
      for (Index j = 0; j < wb.size(); ++j) {
        ASSERT_EQ(fresh.Rmin(j), maintained.Rmin(j)) << "Rmin " << j;
        ASSERT_EQ(fresh.RminFull(j), maintained.RminFull(j))
            << "RminFull " << j;
        ASSERT_EQ(fresh.BandRow(j), maintained.BandRow(j)) << "BandRow " << j;
      }
      for (Index i = 0; i < wa.size(); ++i) {
        ASSERT_EQ(fresh.Cmin(i), maintained.Cmin(i)) << "Cmin " << i;
        ASSERT_EQ(fresh.CminStart(i), maintained.CminStart(i))
            << "CminStart " << i;
        ASSERT_EQ(fresh.CminFull(i), maintained.CminFull(i))
            << "CminFull " << i;
        ASSERT_EQ(fresh.BandCol(i), maintained.BandCol(i)) << "BandCol " << i;
      }
      ++checked;
    }
    EXPECT_GT(checked, 0);
  }
}

}  // namespace
}  // namespace frechet_motif
