// Parity suite for the PR-2 performance work: the monomorphized
// DistanceMatrix fast path, the threshold early-exit contract, and the
// thread-pooled search must all return results identical to the canonical
// serial / virtual-dispatch implementations — on adversarial random
// matrices, on the paper's Figure 5 worked example, and on the
// planted-motif generator.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/distance_matrix.h"
#include "data/datasets.h"
#include "data/planted.h"
#include "geo/metric.h"
#include "join/similarity_join.h"
#include "motif/btm.h"
#include "motif/gtm.h"
#include "motif/gtm_star.h"
#include "motif/subset_search.h"
#include "similarity/frechet.h"
#include "test_util.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

using testing_util::MakeRandomCrossMatrix;
using testing_util::MakeRandomSelfMatrix;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Monomorphized fast path vs generic virtual-dispatch kernel.
// ---------------------------------------------------------------------------

TEST(FastPathParityTest, MatchesGenericOnRandomRanges) {
  const Index n = 40;
  const DistanceMatrix dg = MakeRandomCrossMatrix(n, n, 1234);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const Index i = static_cast<Index>(rng.NextInt(0, n - 1));
    const Index ie = static_cast<Index>(rng.NextInt(i, n - 1));
    const Index j = static_cast<Index>(rng.NextInt(0, n - 1));
    const Index je = static_cast<Index>(rng.NextInt(j, n - 1));
    const double fast = DiscreteFrechetOnRange(dg, i, ie, j, je).value();
    const double generic =
        DiscreteFrechetOnRangeGeneric(dg, i, ie, j, je).value();
    // Same recurrence, same operation order: bit-identical, not just close.
    EXPECT_EQ(fast, generic) << "range (" << i << "," << ie << "," << j << ","
                             << je << ")";
  }
}

TEST(FastPathParityTest, ProviderOverloadDispatchesToMatrixPath) {
  // The DistanceProvider& overload must agree with both explicit paths.
  const DistanceMatrix dg = MakeRandomSelfMatrix(24, 77);
  const DistanceProvider& as_provider = dg;
  for (Index span : {3, 7, 15}) {
    const double via_provider =
        DiscreteFrechetOnRange(as_provider, 0, span, 4, 4 + span).value();
    const double via_matrix =
        DiscreteFrechetOnRange(dg, 0, span, 4, 4 + span).value();
    EXPECT_EQ(via_provider, via_matrix);
  }
}

TEST(FastPathParityTest, WorkedExampleFigure5Values) {
  // The hand-derived dF values of the Figure 5 worked example, through the
  // monomorphized path, the generic path and the scratch-reusing path.
  // clang-format off
  const std::vector<double> values = {
      0, 4, 6, 5, 5, 3, 9, 7,
      4, 0, 3, 2, 2, 7, 4, 8,
      6, 3, 0, 5, 8, 1, 6, 2,
      5, 2, 5, 0, 6, 9, 3, 5,
      5, 2, 8, 6, 0, 4, 7, 6,
      3, 7, 1, 9, 4, 0, 5, 2,
      9, 4, 6, 3, 7, 5, 0, 3,
      7, 8, 2, 5, 6, 2, 3, 0,
  };
  // clang-format on
  const DistanceMatrix dg = DistanceMatrix::FromValues(8, 8, values).value();
  FrechetScratch scratch;
  const struct {
    Index i, ie, j, je;
    double expect;
  } cases[] = {
      {0, 0, 4, 5, 5.0}, {0, 1, 4, 5, 7.0}, {0, 1, 4, 6, 5.0},
      {0, 2, 4, 5, 5.0}, {0, 2, 4, 6, 6.0},
  };
  for (const auto& c : cases) {
    EXPECT_DOUBLE_EQ(
        DiscreteFrechetOnRange(dg, c.i, c.ie, c.j, c.je).value(), c.expect);
    EXPECT_DOUBLE_EQ(
        DiscreteFrechetOnRangeGeneric(dg, c.i, c.ie, c.j, c.je).value(),
        c.expect);
    EXPECT_DOUBLE_EQ(DiscreteFrechetOnRange(dg, c.i, c.ie, c.j, c.je,
                                            kNoFrechetThreshold, &scratch)
                         .value(),
                     c.expect);
  }
}

TEST(FastPathParityTest, ScratchSharedAcrossKernelsStaysConsistent) {
  // One FrechetScratch is documented as shareable across all kernels; mix
  // them with interleaved widths (including the subset DP, whose row swap
  // can leave the two buffers with different sizes) and check the answers
  // still match fresh-scratch runs.
  const Index n = 64;
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, 3131);
  MotifOptions options;
  options.min_length_xi = 2;
  FrechetScratch shared;

  SearchState narrow;
  EvaluateSubset(dg, options, 0, 40, nullptr, false, EndpointCaps{}, &narrow,
                 nullptr, &shared);  // width 24
  const double wide_range =
      DiscreteFrechetOnRange(dg, 0, 50, 5, 60, kNoFrechetThreshold, &shared)
          .value();  // grows row past prev
  SearchState mid;
  EvaluateSubset(dg, options, 0, 30, nullptr, false, EndpointCaps{}, &mid,
                 nullptr, &shared);  // width 34, after a swap-induced skew

  FrechetScratch fresh1, fresh2;
  SearchState narrow_ref, mid_ref;
  EvaluateSubset(dg, options, 0, 40, nullptr, false, EndpointCaps{},
                 &narrow_ref, nullptr, &fresh1);
  EvaluateSubset(dg, options, 0, 30, nullptr, false, EndpointCaps{}, &mid_ref,
                 nullptr, &fresh2);
  EXPECT_EQ(narrow.best_distance, narrow_ref.best_distance);
  EXPECT_EQ(mid.best_distance, mid_ref.best_distance);
  EXPECT_EQ(wide_range, DiscreteFrechetOnRange(dg, 0, 50, 5, 60).value());
}

// ---------------------------------------------------------------------------
// Threshold early-exit contract.
// ---------------------------------------------------------------------------

TEST(ThresholdEarlyExitTest, ExactBelowThresholdLowerBoundAbove) {
  const Index n = 36;
  const DistanceMatrix dg = MakeRandomCrossMatrix(n, n, 555);
  Rng rng(7);
  int early_exits = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const Index i = static_cast<Index>(rng.NextInt(0, n - 6));
    const Index ie = static_cast<Index>(rng.NextInt(i + 2, n - 1));
    const Index j = static_cast<Index>(rng.NextInt(0, n - 6));
    const Index je = static_cast<Index>(rng.NextInt(j + 2, n - 1));
    const double exact = DiscreteFrechetOnRange(dg, i, ie, j, je).value();
    const double threshold = rng.NextDouble(0.0, 120.0);
    const double bounded =
        DiscreteFrechetOnRange(dg, i, ie, j, je, threshold).value();
    if (bounded <= threshold) {
      // Contract: a value within the threshold is the exact DFD.
      EXPECT_EQ(bounded, exact);
    } else {
      // Contract: a value above the threshold is a lower bound on the DFD
      // (and the exact DFD is indeed above the threshold).
      ++early_exits;
      EXPECT_GT(exact, threshold);
      EXPECT_LE(bounded, exact);
    }
    // Both branches agree on which side of the threshold the DFD lies —
    // the only property threshold-pruning callers rely on.
    EXPECT_EQ(bounded > threshold, exact > threshold);
  }
  // The random thresholds must actually exercise the early-exit branch.
  EXPECT_GT(early_exits, 20);
}

TEST(ThresholdEarlyExitTest, GenericPathHonorsTheSameContract) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(30, 4242);
  const double exact = DiscreteFrechetOnRangeGeneric(dg, 0, 20, 5, 28).value();
  const double tight =
      DiscreteFrechetOnRangeGeneric(dg, 0, 20, 5, 28, exact).value();
  EXPECT_EQ(tight, exact);  // threshold == DFD: no early exit possible
  const double below =
      DiscreteFrechetOnRangeGeneric(dg, 0, 20, 5, 28, exact * 0.25).value();
  EXPECT_EQ(below > exact * 0.25, true);
  EXPECT_LE(below, exact);
}

// ---------------------------------------------------------------------------
// Serial vs thread-pooled search parity.
// ---------------------------------------------------------------------------

Trajectory PlantedTrajectory(Index length, std::uint64_t seed) {
  DatasetOptions data_options;
  data_options.length = length;
  data_options.seed = seed;
  const Trajectory base =
      MakeDataset(DatasetKind::kGeoLifeLike, data_options).value();
  return PlantMotif(base, /*segment_start=*/20, /*segment_length=*/18,
                    /*gap_length=*/15, /*noise_m=*/1.0, seed + 1)
      .value()
      .trajectory;
}

template <typename Options, typename Run>
void ExpectSerialParallelParity(const Options& serial_options,
                                const Run& run) {
  Options parallel_options = serial_options;
  parallel_options.motif.threads = 4;

  MotifStats serial_stats;
  MotifStats parallel_stats;
  const MotifResult serial = run(serial_options, &serial_stats);
  const MotifResult parallel = run(parallel_options, &parallel_stats);

  ASSERT_EQ(serial.found, parallel.found);
  EXPECT_EQ(serial.distance, parallel.distance);  // bit-identical
  EXPECT_EQ(serial.best, parallel.best);
  // Deterministic structural totals agree; effort counters may not (the
  // parallel batches run against snapshot thresholds).
  EXPECT_EQ(serial_stats.total_subsets, parallel_stats.total_subsets);
}

TEST(ThreadedSearchParityTest, BtmPlantedMotif) {
  const Trajectory s = PlantedTrajectory(140, 11);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Haversine()).value();
  BtmOptions options;
  options.motif.min_length_xi = 8;
  ExpectSerialParallelParity(options,
                             [&](const BtmOptions& o, MotifStats* stats) {
                               return BtmMotif(dg, o, stats).value();
                             });
}

TEST(ThreadedSearchParityTest, BtmTightBounds) {
  const Trajectory s = PlantedTrajectory(120, 13);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Haversine()).value();
  BtmOptions options;
  options.motif.min_length_xi = 8;
  options.relaxed = false;
  ExpectSerialParallelParity(options,
                             [&](const BtmOptions& o, MotifStats* stats) {
                               return BtmMotif(dg, o, stats).value();
                             });
}

TEST(ThreadedSearchParityTest, GtmPlantedMotif) {
  const Trajectory s = PlantedTrajectory(140, 17);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Haversine()).value();
  GtmOptions options;
  options.motif.min_length_xi = 8;
  options.group_size_tau = 8;
  ExpectSerialParallelParity(options,
                             [&](const GtmOptions& o, MotifStats* stats) {
                               return GtmMotif(dg, o, stats).value();
                             });
}

TEST(ThreadedSearchParityTest, GtmStarPlantedMotif) {
  const Trajectory s = PlantedTrajectory(140, 19);
  GtmStarOptions options;
  options.motif.min_length_xi = 8;
  options.group_size_tau = 8;
  ExpectSerialParallelParity(
      options, [&](const GtmStarOptions& o, MotifStats* stats) {
        return GtmStarMotif(s, Haversine(), o, stats).value();
      });
}

TEST(ThreadedSearchParityTest, RandomMatrixAllAlgorithmsAgree) {
  // On an adversarial random matrix every algorithm's threads=4 run must
  // reproduce its own serial run exactly (candidate included), and all
  // algorithms must agree on the optimal distance. The reported candidate
  // may differ *across* algorithms when distinct candidates tie on the
  // optimum — visit order is algorithm-specific — so cross-algorithm
  // equality is asserted on the distance only.
  const Index n = 44;
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, 2024);
  MotifOptions motif;
  motif.min_length_xi = 3;

  BtmOptions btm;
  btm.motif = motif;
  const MotifResult reference = BtmMotif(dg, btm).value();

  const auto with_threads = [](auto options, int threads) {
    options.motif.threads = threads;
    return options;
  };

  const MotifResult rb = BtmMotif(dg, with_threads(btm, 4)).value();
  EXPECT_EQ(rb.distance, reference.distance);
  EXPECT_EQ(rb.best, reference.best);

  GtmOptions gtm;
  gtm.motif = motif;
  gtm.group_size_tau = 8;
  const MotifResult rg1 = GtmMotif(dg, gtm).value();
  const MotifResult rg4 = GtmMotif(dg, with_threads(gtm, 4)).value();
  EXPECT_EQ(rg1.distance, reference.distance);
  EXPECT_EQ(rg4.distance, rg1.distance);
  EXPECT_EQ(rg4.best, rg1.best);

  GtmStarOptions gs;
  gs.motif = motif;
  gs.group_size_tau = 8;
  const MotifResult rgs1 = GtmStarMotif(dg, gs).value();
  const MotifResult rgs4 = GtmStarMotif(dg, with_threads(gs, 4)).value();
  EXPECT_EQ(rgs1.distance, reference.distance);
  EXPECT_EQ(rgs4.distance, rgs1.distance);
  EXPECT_EQ(rgs4.best, rgs1.best);
}

// ---------------------------------------------------------------------------
// Thread-pooled similarity join parity.
// ---------------------------------------------------------------------------

TEST(ThreadedJoinParityTest, SelfJoinMatchesSerial) {
  std::vector<Trajectory> trajectories;
  for (std::uint64_t seed = 0; seed < 14; ++seed) {
    trajectories.push_back(testing_util::MakePlanarWalk(30, seed));
  }
  JoinOptions options;
  options.threshold = 60.0;

  JoinStats serial_stats;
  const std::vector<JoinPair> serial =
      DfdSelfJoin(trajectories, Euclidean(), options, &serial_stats).value();

  JoinOptions pooled = options;
  pooled.threads = 4;
  JoinStats pooled_stats;
  const std::vector<JoinPair> parallel =
      DfdSelfJoin(trajectories, Euclidean(), pooled, &pooled_stats).value();

  EXPECT_EQ(serial, parallel);  // same pairs in the same order
  EXPECT_EQ(serial_stats.pairs_total, pooled_stats.pairs_total);
  EXPECT_EQ(serial_stats.matched, pooled_stats.matched);
  EXPECT_EQ(serial_stats.decided_exact, pooled_stats.decided_exact);
}

TEST(ThreadedJoinParityTest, CrossJoinWithGridIndexMatchesSerial) {
  std::vector<Trajectory> left;
  std::vector<Trajectory> right;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    left.push_back(testing_util::MakePlanarWalk(24, seed));
    right.push_back(testing_util::MakePlanarWalk(24, seed + 100));
  }
  JoinOptions options;
  options.threshold = 80.0;
  options.use_grid_index = true;

  const std::vector<JoinPair> serial =
      DfdSimilarityJoin(left, right, Euclidean(), options).value();
  JoinOptions pooled = options;
  pooled.threads = 3;
  const std::vector<JoinPair> parallel =
      DfdSimilarityJoin(left, right, Euclidean(), pooled).value();
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace frechet_motif
