// Randomized enforcement of the (1+ε) approximation contract
// (approximation_epsilon in FindMotifOptions / TopKOptions /
// StreamOptions): for every algorithm and every tested ε, the reported
// distance is a real candidate distance within (1+ε) of the exact
// optimum — never below it — and ε = 0 is bit-for-bit the exact search.
// Random trajectories, random ξ, both metrics; seeds reproduce via
// FMOTIF_FUZZ_SEED exactly like the other fuzz suites.

#include <cstring>
#include <optional>
#include <vector>

#include "data/datasets.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "motif/motif.h"
#include "motif/top_k.h"
#include "stream/streaming_motif_monitor.h"
#include "test_util.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

constexpr MotifAlgorithm kPrunedAlgorithms[] = {
    MotifAlgorithm::kBtm, MotifAlgorithm::kGtm, MotifAlgorithm::kGtmStar};

const char* Name(MotifAlgorithm a) {
  switch (a) {
    case MotifAlgorithm::kBruteDp:
      return "brute";
    case MotifAlgorithm::kBtm:
      return "btm";
    case MotifAlgorithm::kGtm:
      return "gtm";
    case MotifAlgorithm::kGtmStar:
      return "gtm_star";
  }
  return "?";
}

/// exact <= reported <= (1+eps) * exact. The lower bound holds because an
/// approximate search still reports the distance of a real candidate; the
/// upper bound is the advertised guarantee.
void ExpectWithinContract(double reported, double exact, double eps) {
  EXPECT_GE(reported, exact);
  EXPECT_LE(reported, (1.0 + eps) * exact * (1.0 + 1e-12));
}

TEST(ApproxContractFuzz, BatchAlgorithmsWithinOnePlusEps) {
  const std::uint64_t seed = testing_util::FuzzSeed(20260808);
  const int rounds = testing_util::FuzzRounds(5);
  Rng rng(seed);
  const HaversineMetric haversine;
  const EuclideanMetric euclidean;
  for (int round = 0; round < rounds; ++round) {
    const Index xi = static_cast<Index>(rng.NextInt(6, 18));
    const Index n = 2 * xi + 4 + static_cast<Index>(rng.NextInt(20, 90));
    const bool geo = rng.NextInt(0, 1) == 0;
    const GroundMetric& metric =
        geo ? static_cast<const GroundMetric&>(haversine)
            : static_cast<const GroundMetric&>(euclidean);
    Trajectory t;
    if (geo) {
      DatasetOptions data;
      data.length = n;
      data.seed = seed + 100 + round;
      t = MakeDataset(DatasetKind::kGeoLifeLike, data).value();
    } else {
      t = testing_util::MakePlanarWalk(n, seed + 100 + round);
    }

    for (const MotifAlgorithm algorithm : kPrunedAlgorithms) {
      FindMotifOptions exact_options;
      exact_options.algorithm = algorithm;
      exact_options.min_length_xi = xi;
      const auto exact = FindMotif(t, metric, exact_options);
      ASSERT_TRUE(exact.ok()) << exact.status();

      for (const double eps :
           {0.0, 0.01, 0.1, rng.NextDouble(0.0, 0.5)}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed " << seed << " round " << round << " "
                     << Name(algorithm) << " eps=" << eps << " xi=" << xi
                     << " n=" << n << (geo ? " haversine" : " euclidean"));
        FindMotifOptions options = exact_options;
        options.approximation_epsilon = eps;
        const auto approx = FindMotif(t, metric, options);
        ASSERT_TRUE(approx.ok()) << approx.status();
        ASSERT_EQ(exact.value().found, approx.value().found);
        if (!exact.value().found) continue;
        ExpectWithinContract(approx.value().distance, exact.value().distance,
                             eps);
        if (eps == 0.0) {
          // ε = 0 is the exact search, bit for bit: same candidate, same
          // distance bits.
          EXPECT_EQ(exact.value().best, approx.value().best);
          EXPECT_EQ(0, std::memcmp(&exact.value().distance,
                                   &approx.value().distance, sizeof(double)));
        }
      }
    }
  }
}

TEST(ApproxContractFuzz, TopKPerRankContract) {
  const std::uint64_t seed = testing_util::FuzzSeed(20260809);
  const int rounds = testing_util::FuzzRounds(4);
  Rng rng(seed);
  const EuclideanMetric metric;
  for (int round = 0; round < rounds; ++round) {
    const Index xi = static_cast<Index>(rng.NextInt(5, 12));
    const Index n = 2 * xi + 4 + static_cast<Index>(rng.NextInt(20, 70));
    const Trajectory t = testing_util::MakePlanarWalk(n, seed + 300 + round);

    TopKOptions exact_options;
    exact_options.k = static_cast<int>(rng.NextInt(2, 6));
    exact_options.motif.min_length_xi = xi;
    exact_options.min_start_separation = 1;  // the per-rank contract's domain
    const auto exact = TopKMotifs(t, metric, exact_options);
    ASSERT_TRUE(exact.ok()) << exact.status();

    for (const double eps : {0.0, 0.02, 0.15}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << " round " << round << " eps=" << eps
                   << " k=" << exact_options.k << " xi=" << xi << " n=" << n);
      TopKOptions options = exact_options;
      options.approximation_epsilon = eps;
      const auto approx = TopKMotifs(t, metric, options);
      ASSERT_TRUE(approx.ok()) << approx.status();
      ASSERT_EQ(exact.value().size(), approx.value().size());
      for (std::size_t r = 0; r < exact.value().size(); ++r) {
        SCOPED_TRACE(::testing::Message() << "rank " << r);
        ExpectWithinContract(approx.value()[r].distance,
                             exact.value()[r].distance, eps);
        if (eps == 0.0) {
          EXPECT_EQ(exact.value()[r].best, approx.value()[r].best);
          EXPECT_EQ(0, std::memcmp(&exact.value()[r].distance,
                                   &approx.value()[r].distance,
                                   sizeof(double)));
        }
      }
    }
  }
}

TEST(ApproxContractFuzz, TopKThreadedMatchesSerialAtEveryEps) {
  // Satellite of the ThreadPool plumbing through TopKMotifs' bound
  // precompute: threads=4 must be bit-identical to serial, exact and
  // approximate alike.
  const std::uint64_t seed = testing_util::FuzzSeed(20260810);
  const int rounds = testing_util::FuzzRounds(3);
  Rng rng(seed);
  const EuclideanMetric metric;
  for (int round = 0; round < rounds; ++round) {
    const Index xi = static_cast<Index>(rng.NextInt(5, 12));
    const Index n = 2 * xi + 4 + static_cast<Index>(rng.NextInt(30, 90));
    const Trajectory t = testing_util::MakePlanarWalk(n, seed + 500 + round);
    for (const double eps : {0.0, 0.05}) {
      SCOPED_TRACE(::testing::Message() << "seed " << seed << " round "
                                        << round << " eps=" << eps
                                        << " xi=" << xi << " n=" << n);
      TopKOptions serial;
      serial.k = 4;
      serial.motif.min_length_xi = xi;
      serial.approximation_epsilon = eps;
      TopKOptions threaded = serial;
      threaded.motif.threads = 4;
      const auto a = TopKMotifs(t, metric, serial);
      const auto b = TopKMotifs(t, metric, threaded);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      ASSERT_EQ(a.value().size(), b.value().size());
      for (std::size_t r = 0; r < a.value().size(); ++r) {
        EXPECT_EQ(a.value()[r].best, b.value()[r].best) << "rank " << r;
        EXPECT_EQ(0, std::memcmp(&a.value()[r].distance,
                                 &b.value()[r].distance, sizeof(double)))
            << "rank " << r;
      }
    }
  }
}

TEST(ApproxContractFuzz, StreamingPerWindowContract) {
  // Every slide of an ε-relaxed monitor stays within (1+ε) of the exact
  // from-scratch answer on the identical window — per window, not
  // compounding — and the ε=0 monitor is bit-identical to it.
  const std::uint64_t seed = testing_util::FuzzSeed(20260811);
  const int rounds = testing_util::FuzzRounds(4);
  Rng rng(seed);
  const EuclideanMetric metric;
  for (int round = 0; round < rounds; ++round) {
    const Index xi = static_cast<Index>(rng.NextInt(5, 12));
    StreamOptions base;
    base.min_length_xi = xi;
    base.window_length =
        2 * xi + 4 + static_cast<Index>(rng.NextInt(0, 40));
    base.slide_step = static_cast<Index>(rng.NextInt(1, base.window_length));
    const Index points =
        base.window_length + static_cast<Index>(rng.NextInt(40, 160));
    const Trajectory t =
        testing_util::MakePlanarWalk(points, seed + 700 + round);
    const double eps = round == 0 ? 0.05 : rng.NextDouble(0.0, 0.3);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " round " << round << " eps=" << eps
                 << " W=" << base.window_length << " slide=" << base.slide_step
                 << " xi=" << xi << " n=" << points);

    StreamOptions relaxed = base;
    relaxed.approximation_epsilon = eps;
    auto exact_monitor = StreamingMotifMonitor::Create(base, metric);
    auto approx_monitor = StreamingMotifMonitor::Create(relaxed, metric);
    ASSERT_TRUE(exact_monitor.ok()) << exact_monitor.status();
    ASSERT_TRUE(approx_monitor.ok()) << approx_monitor.status();

    int slides = 0;
    for (Index k = 0; k < t.size(); ++k) {
      auto eu = exact_monitor.value().Push(t[k]);
      auto au = approx_monitor.value().Push(t[k]);
      ASSERT_TRUE(eu.ok()) << eu.status();
      ASSERT_TRUE(au.ok()) << au.status();
      ASSERT_EQ(eu.value().has_value(), au.value().has_value());
      if (!au.value().has_value()) continue;
      ++slides;
      // The exact leg is itself checked against a from-scratch search by
      // the streaming parity suite; here it serves as the per-window
      // exact optimum.
      const double exact = eu.value()->motif.distance;
      const double reported = au.value()->motif.distance;
      ExpectWithinContract(reported, exact, eps);
      EXPECT_EQ(eps, au.value()->approximation_epsilon);
      EXPECT_EQ(0.0, eu.value()->approximation_epsilon);
      if (eps == 0.0) {
        EXPECT_EQ(eu.value()->motif.best, au.value()->motif.best);
        EXPECT_EQ(0, std::memcmp(&exact, &reported, sizeof(double)));
      }
    }
    EXPECT_GT(slides, 0);
  }
}

TEST(ApproxContractFuzz, NegativeEpsilonIsRejectedEverywhere) {
  const EuclideanMetric metric;
  const Trajectory t = testing_util::MakePlanarWalk(40, 1);

  FindMotifOptions motif;
  motif.min_length_xi = 6;
  motif.approximation_epsilon = -0.1;
  EXPECT_FALSE(FindMotif(t, metric, motif).ok());

  TopKOptions topk;
  topk.motif.min_length_xi = 6;
  topk.approximation_epsilon = -1e-9;
  EXPECT_FALSE(TopKMotifs(t, metric, topk).ok());

  StreamOptions stream;
  stream.window_length = 30;
  stream.slide_step = 5;
  stream.min_length_xi = 6;
  stream.approximation_epsilon = -0.5;
  EXPECT_FALSE(StreamingMotifMonitor::Create(stream, metric).ok());
}

}  // namespace
}  // namespace frechet_motif
