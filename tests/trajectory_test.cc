#include "core/trajectory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/options.h"

namespace frechet_motif {
namespace {

TEST(TrajectoryTest, EmptyByDefault) {
  Trajectory t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  EXPECT_FALSE(t.has_timestamps());
}

TEST(TrajectoryTest, CreateValidatesFiniteCoordinates) {
  StatusOr<Trajectory> t =
      Trajectory::Create({Point(0, 0), Point(std::nan(""), 1)});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(TrajectoryTest, CreateValidatesTimestampCount) {
  StatusOr<Trajectory> t =
      Trajectory::Create({Point(0, 0), Point(1, 1)}, {1.0});
  EXPECT_FALSE(t.ok());
}

TEST(TrajectoryTest, CreateValidatesAscendingTimestamps) {
  StatusOr<Trajectory> t =
      Trajectory::Create({Point(0, 0), Point(1, 1)}, {2.0, 2.0});
  EXPECT_FALSE(t.ok());
  t = Trajectory::Create({Point(0, 0), Point(1, 1)}, {2.0, 1.0});
  EXPECT_FALSE(t.ok());
}

TEST(TrajectoryTest, CreateAcceptsNonUniformTimestamps) {
  StatusOr<Trajectory> t = Trajectory::Create(
      {Point(0, 0), Point(1, 1), Point(2, 2)}, {0.0, 1.0, 60.0});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t.value().has_timestamps());
  EXPECT_DOUBLE_EQ(t.value().timestamp(2), 60.0);
}

TEST(TrajectoryTest, AppendWithTimestamps) {
  Trajectory t;
  t.Append(Point(0, 0), 10.0);
  t.Append(Point(1, 1), 11.5);
  EXPECT_EQ(t.size(), 2);
  ASSERT_TRUE(t.has_timestamps());
  EXPECT_DOUBLE_EQ(t.timestamp(1), 11.5);
}

TEST(TrajectoryTest, SliceCopiesPointsAndTimestamps) {
  Trajectory t({Point(0, 0), Point(1, 1), Point(2, 2), Point(3, 3)},
               {0.0, 1.0, 2.0, 3.0});
  const Trajectory s = t.Slice(1, 2);
  ASSERT_EQ(s.size(), 2);
  EXPECT_EQ(s[0], Point(1, 1));
  EXPECT_EQ(s[1], Point(2, 2));
  ASSERT_TRUE(s.has_timestamps());
  EXPECT_DOUBLE_EQ(s.timestamp(0), 1.0);
}

TEST(TrajectoryTest, SliceSinglePoint) {
  Trajectory t({Point(0, 0), Point(5, 5)});
  const Trajectory s = t.Slice(1, 1);
  ASSERT_EQ(s.size(), 1);
  EXPECT_EQ(s[0], Point(5, 5));
}

TEST(TrajectoryTest, ConcatenateShiftsTimestamps) {
  Trajectory a({Point(0, 0), Point(1, 1)}, {0.0, 5.0});
  Trajectory b({Point(2, 2), Point(3, 3)}, {100.0, 101.0});
  a.Concatenate(b);
  ASSERT_EQ(a.size(), 4);
  ASSERT_TRUE(a.has_timestamps());
  // b's clock is rebased to start 1s after a ends; gaps inside b preserved.
  EXPECT_DOUBLE_EQ(a.timestamp(2), 6.0);
  EXPECT_DOUBLE_EQ(a.timestamp(3), 7.0);
  for (Index i = 1; i < a.size(); ++i) {
    EXPECT_GT(a.timestamp(i), a.timestamp(i - 1));
  }
}

TEST(TrajectoryTest, ConcatenateDropsTimestampsOnMixedInputs) {
  Trajectory a({Point(0, 0)}, {0.0});
  Trajectory b({Point(1, 1)});
  a.Concatenate(b);
  EXPECT_EQ(a.size(), 2);
  EXPECT_FALSE(a.has_timestamps());
}

TEST(TrajectoryTest, ConcatenateOntoEmpty) {
  Trajectory a;
  Trajectory b({Point(1, 1), Point(2, 2)}, {5.0, 6.0});
  a.Concatenate(b);
  EXPECT_EQ(a.size(), 2);
  EXPECT_TRUE(a.has_timestamps());
  EXPECT_DOUBLE_EQ(a.timestamp(0), 5.0);
}

TEST(SubtrajectoryRefTest, LengthAndEquality) {
  const SubtrajectoryRef r{3, 9};
  EXPECT_EQ(r.length(), 7);
  EXPECT_EQ(r, (SubtrajectoryRef{3, 9}));
  EXPECT_FALSE(r == (SubtrajectoryRef{3, 8}));
}

// -------------------------------------------------------- options/candidates

TEST(MotifOptionsTest, ValidateRejectsSmallXi) {
  MotifOptions o;
  o.min_length_xi = 0;
  EXPECT_FALSE(ValidateMotifInput(o, 100, 100).ok());
}

TEST(MotifOptionsTest, ValidateSingleNeedsTwoXiPlusFour) {
  MotifOptions o;
  o.min_length_xi = 3;
  EXPECT_FALSE(ValidateMotifInput(o, 9, 9).ok());
  EXPECT_TRUE(ValidateMotifInput(o, 10, 10).ok());
}

TEST(MotifOptionsTest, ValidateCrossNeedsXiPlusTwoEach) {
  MotifOptions o;
  o.min_length_xi = 3;
  o.variant = MotifVariant::kCrossTrajectory;
  EXPECT_FALSE(ValidateMotifInput(o, 4, 100).ok());
  EXPECT_FALSE(ValidateMotifInput(o, 100, 4).ok());
  EXPECT_TRUE(ValidateMotifInput(o, 5, 5).ok());
}

TEST(CandidateTest, ValidityRules) {
  MotifOptions o;
  o.min_length_xi = 2;
  // Valid: i=0, ie=3, j=4, je=7 within n=8.
  EXPECT_TRUE(IsValidCandidate({0, 3, 4, 7}, o, 8, 8));
  // Too short a first leg (ie <= i+xi).
  EXPECT_FALSE(IsValidCandidate({0, 2, 4, 7}, o, 8, 8));
  // Overlap (ie >= j).
  EXPECT_FALSE(IsValidCandidate({0, 4, 4, 7}, o, 8, 8));
  // je out of range.
  EXPECT_FALSE(IsValidCandidate({0, 3, 4, 8}, o, 8, 8));
}

TEST(CandidateTest, CrossVariantAllowsAnyOrder) {
  MotifOptions o;
  o.min_length_xi = 2;
  o.variant = MotifVariant::kCrossTrajectory;
  // ie >= j is fine across different trajectories.
  EXPECT_TRUE(IsValidCandidate({0, 5, 0, 5}, o, 8, 8));
}

TEST(MotifResultTest, AccessorsExposeRanges) {
  MotifResult r;
  r.best = {1, 5, 9, 14};
  EXPECT_EQ(r.first(), (SubtrajectoryRef{1, 5}));
  EXPECT_EQ(r.second(), (SubtrajectoryRef{9, 14}));
}

}  // namespace
}  // namespace frechet_motif
