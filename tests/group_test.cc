#include "motif/group.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/options.h"
#include "motif/subset_search.h"
#include "similarity/frechet.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakeRandomCrossMatrix;
using testing_util::MakeRandomSelfMatrix;

constexpr double kInf = std::numeric_limits<double>::infinity();

MotifOptions Options(Index xi, bool single) {
  MotifOptions o;
  o.min_length_xi = xi;
  o.variant = single ? MotifVariant::kSingleTrajectory
                     : MotifVariant::kCrossTrajectory;
  return o;
}

TEST(GroupingTest, GroupBoundariesCoverAllPoints) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(13, 1);  // 13 = 4*3+1
  const Grouping g = Grouping::Build(dg, Options(2, true), 4);
  EXPECT_EQ(g.num_row_groups(), 4);
  EXPECT_EQ(g.RowFirst(0), 0);
  EXPECT_EQ(g.RowLast(0), 3);
  EXPECT_EQ(g.RowFirst(3), 12);
  EXPECT_EQ(g.RowLast(3), 12);  // trailing partial group
}

TEST(GroupingTest, EnvelopesMatchBruteForceScan) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(22, 5);
  const Grouping g = Grouping::Build(dg, Options(2, true), 4);
  for (Index u = 0; u < g.num_row_groups(); ++u) {
    for (Index v = 0; v < g.num_col_groups(); ++v) {
      double lo = kInf;
      double hi = -kInf;
      for (Index i = g.RowFirst(u); i <= g.RowLast(u); ++i) {
        for (Index j = g.ColFirst(v); j <= g.ColLast(v); ++j) {
          lo = std::min(lo, dg.Distance(i, j));
          hi = std::max(hi, dg.Distance(i, j));
        }
      }
      EXPECT_DOUBLE_EQ(g.Dmin(u, v), lo);
      EXPECT_DOUBLE_EQ(g.Dmax(u, v), hi);
    }
  }
}

TEST(GroupingTest, CorollaryOneSandwich) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(20, 9);
  const Grouping g = Grouping::Build(dg, Options(2, true), 5);
  for (Index u = 0; u < g.num_row_groups(); ++u) {
    for (Index v = 0; v < g.num_col_groups(); ++v) {
      for (Index i = g.RowFirst(u); i <= g.RowLast(u); ++i) {
        for (Index j = g.ColFirst(v); j <= g.ColLast(v); ++j) {
          EXPECT_LE(g.Dmin(u, v), dg.Distance(i, j));
          EXPECT_GE(g.Dmax(u, v), dg.Distance(i, j));
        }
      }
    }
  }
}

/// Lemma 3/4 property sweep: for every group pair, the group DFD lower
/// bound must not exceed the DFD of any valid candidate starting in the
/// pair, and the upper bound must dominate at least one valid candidate.
/// Additionally the pattern bounds must lower-bound every candidate.
class GroupBoundSoundnessTest
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, std::uint64_t, bool>> {};

TEST_P(GroupBoundSoundnessTest, GroupBoundsSandwichCandidates) {
  const auto [n, xi, tau, seed, single] = GetParam();
  const DistanceMatrix dg = single ? MakeRandomSelfMatrix(n, seed)
                                   : MakeRandomCrossMatrix(n, n, seed);
  const MotifOptions options = Options(xi, single);
  const Grouping g = Grouping::Build(dg, options, tau);

  for (Index u = 0; u < g.num_row_groups(); ++u) {
    for (Index v = 0; v < g.num_col_groups(); ++v) {
      if (!g.AdmitsCandidate(u, v)) continue;
      double glb = 0.0;
      double gub = 0.0;
      g.DfdBounds(u, v, std::numeric_limits<double>::infinity(), &glb, &gub);
      const double pattern = g.PatternLb(u, v);

      double best_in_block = kInf;
      bool any = false;
      for (Index i = g.RowFirst(u); i <= g.RowLast(u); ++i) {
        for (Index j = g.ColFirst(v); j <= g.ColLast(v); ++j) {
          if (!IsValidSubsetStart(options, n, n, i, j)) continue;
          const Index ie_max = single ? j - 1 : n - 1;
          for (Index ie = i + xi + 1; ie <= ie_max; ++ie) {
            for (Index je = j + xi + 1; je <= n - 1; ++je) {
              const double dfd =
                  DiscreteFrechetOnRange(dg, i, ie, j, je).value();
              any = true;
              best_in_block = std::min(best_in_block, dfd);
              EXPECT_LE(pattern, dfd)
                  << "pattern bound broke at (" << u << "," << v << ") cand ("
                  << i << "," << ie << "," << j << "," << je << ")";
              EXPECT_LE(glb, dfd)
                  << "GLB broke at (" << u << "," << v << ") cand (" << i
                  << "," << ie << "," << j << "," << je << ")";
            }
          }
        }
      }
      if (any) {
        // Upper bound: some valid candidate in the block is <= GUB
        // (when GUB is finite; +inf means no witness was guaranteed).
        if (gub < kInf) {
          EXPECT_LE(best_in_block, gub)
              << "GUB not achieved at (" << u << "," << v << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMatrices, GroupBoundSoundnessTest,
    ::testing::Combine(::testing::Values(18, 24), ::testing::Values(1, 2, 3),
                       ::testing::Values(2, 3, 4, 8),
                       ::testing::Values(12u, 13u), ::testing::Bool()));

TEST(GroupingTest, AdmitsCandidateMatchesPointLevelScan) {
  const Index n = 26;
  for (const bool single : {true, false}) {
    const DistanceMatrix dg = MakeRandomSelfMatrix(n, 4);
    const MotifOptions options = Options(3, single);
    const Grouping g = Grouping::Build(dg, options, 4);
    for (Index u = 0; u < g.num_row_groups(); ++u) {
      for (Index v = 0; v < g.num_col_groups(); ++v) {
        bool expect = false;
        for (Index i = g.RowFirst(u); i <= g.RowLast(u) && !expect; ++i) {
          for (Index j = g.ColFirst(v); j <= g.ColLast(v); ++j) {
            if (IsValidSubsetStart(options, n, n, i, j)) {
              expect = true;
              break;
            }
          }
        }
        EXPECT_EQ(g.AdmitsCandidate(u, v), expect)
            << "single=" << single << " (" << u << "," << v << ")";
      }
    }
  }
}

TEST(GroupingTest, TauOneEnvelopesEqualGroundDistance) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(15, 2);
  const Grouping g = Grouping::Build(dg, Options(2, true), 1);
  for (Index i = 0; i < 15; ++i) {
    for (Index j = 0; j < 15; ++j) {
      EXPECT_DOUBLE_EQ(g.Dmin(i, j), dg.Distance(i, j));
      EXPECT_DOUBLE_EQ(g.Dmax(i, j), dg.Distance(i, j));
    }
  }
}

TEST(GroupingTest, CrossAndBandDeactivateForLargeTau) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(40, 3);
  // tau > xi+1: crossing the neighbouring group is not guaranteed.
  const Grouping g = Grouping::Build(dg, Options(3, true), 8);
  EXPECT_EQ(g.CrossLb(0, 2), -kInf);
  EXPECT_EQ(g.BandLb(0, 2), -kInf);
  // The combined pattern bound then falls back to the cell bound.
  EXPECT_DOUBLE_EQ(g.PatternLb(0, 2), g.CellLb(0, 2));
}

}  // namespace
}  // namespace frechet_motif
