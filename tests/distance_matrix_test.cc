#include "core/distance_matrix.h"

#include <gtest/gtest.h>

#include "geo/metric.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;

TEST(DistanceMatrixTest, RejectsEmptyTrajectory) {
  Trajectory empty;
  EXPECT_FALSE(DistanceMatrix::Build(empty, Euclidean()).ok());
}

TEST(DistanceMatrixTest, SelfMatrixMatchesMetric) {
  const Trajectory s = MakePlanarWalk(20, 1);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Euclidean()).value();
  EXPECT_EQ(dg.rows(), 20);
  EXPECT_EQ(dg.cols(), 20);
  for (Index i = 0; i < 20; ++i) {
    for (Index j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(dg.Distance(i, j), Euclidean().Distance(s[i], s[j]));
    }
  }
}

TEST(DistanceMatrixTest, SelfMatrixIsSymmetricWithZeroDiagonal) {
  const Trajectory s = MakePlanarWalk(15, 2);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Euclidean()).value();
  for (Index i = 0; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(dg.Distance(i, i), 0.0);
    for (Index j = 0; j < 15; ++j) {
      EXPECT_DOUBLE_EQ(dg.Distance(i, j), dg.Distance(j, i));
    }
  }
}

TEST(DistanceMatrixTest, CrossMatrixUsesBothInputs) {
  const Trajectory s = MakePlanarWalk(6, 3);
  const Trajectory t = MakePlanarWalk(9, 4);
  const DistanceMatrix dg = DistanceMatrix::Build(s, t, Euclidean()).value();
  EXPECT_EQ(dg.rows(), 6);
  EXPECT_EQ(dg.cols(), 9);
  EXPECT_DOUBLE_EQ(dg.Distance(2, 7), Euclidean().Distance(s[2], t[7]));
}

TEST(DistanceMatrixTest, FromValuesValidatesShape) {
  EXPECT_FALSE(DistanceMatrix::FromValues(2, 2, {1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(DistanceMatrix::FromValues(0, 2, {}).ok());
  StatusOr<DistanceMatrix> ok =
      DistanceMatrix::FromValues(2, 2, {0.0, 1.0, 1.0, 0.0});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value().Distance(0, 1), 1.0);
}

TEST(DistanceMatrixTest, ReportsMemoryFootprint) {
  const Trajectory s = MakePlanarWalk(32, 5);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Euclidean()).value();
  EXPECT_GE(dg.MemoryBytes(), 32u * 32u * sizeof(double));
}

TEST(OnTheFlyDistanceTest, MatchesMaterializedMatrix) {
  const Trajectory s = MakePlanarWalk(18, 6);
  const Trajectory t = MakePlanarWalk(21, 7);
  const DistanceMatrix dg = DistanceMatrix::Build(s, t, Euclidean()).value();
  const OnTheFlyDistance fly(s, t, Euclidean());
  EXPECT_EQ(fly.rows(), dg.rows());
  EXPECT_EQ(fly.cols(), dg.cols());
  for (Index i = 0; i < dg.rows(); ++i) {
    for (Index j = 0; j < dg.cols(); ++j) {
      EXPECT_DOUBLE_EQ(fly.Distance(i, j), dg.Distance(i, j));
    }
  }
  EXPECT_EQ(fly.MemoryBytes(), 0u);
}

TEST(OnTheFlyDistanceTest, SingleTrajectoryFormIsSelfDistance) {
  const Trajectory s = MakePlanarWalk(10, 8);
  const OnTheFlyDistance fly(s, Euclidean());
  EXPECT_EQ(fly.rows(), 10);
  EXPECT_EQ(fly.cols(), 10);
  EXPECT_DOUBLE_EQ(fly.Distance(3, 3), 0.0);
}

}  // namespace
}  // namespace frechet_motif
