#include "core/distance_matrix.h"

#include <gtest/gtest.h>

#include "geo/metric.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;

TEST(DistanceMatrixTest, RejectsEmptyTrajectory) {
  Trajectory empty;
  EXPECT_FALSE(DistanceMatrix::Build(empty, Euclidean()).ok());
}

TEST(DistanceMatrixTest, SelfMatrixMatchesMetric) {
  const Trajectory s = MakePlanarWalk(20, 1);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Euclidean()).value();
  EXPECT_EQ(dg.rows(), 20);
  EXPECT_EQ(dg.cols(), 20);
  for (Index i = 0; i < 20; ++i) {
    for (Index j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(dg.Distance(i, j), Euclidean().Distance(s[i], s[j]));
    }
  }
}

TEST(DistanceMatrixTest, SelfMatrixIsSymmetricWithZeroDiagonal) {
  const Trajectory s = MakePlanarWalk(15, 2);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Euclidean()).value();
  for (Index i = 0; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(dg.Distance(i, i), 0.0);
    for (Index j = 0; j < 15; ++j) {
      EXPECT_DOUBLE_EQ(dg.Distance(i, j), dg.Distance(j, i));
    }
  }
}

TEST(DistanceMatrixTest, CrossMatrixUsesBothInputs) {
  const Trajectory s = MakePlanarWalk(6, 3);
  const Trajectory t = MakePlanarWalk(9, 4);
  const DistanceMatrix dg = DistanceMatrix::Build(s, t, Euclidean()).value();
  EXPECT_EQ(dg.rows(), 6);
  EXPECT_EQ(dg.cols(), 9);
  EXPECT_DOUBLE_EQ(dg.Distance(2, 7), Euclidean().Distance(s[2], t[7]));
}

TEST(DistanceMatrixTest, FromValuesValidatesShape) {
  EXPECT_FALSE(DistanceMatrix::FromValues(2, 2, {1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(DistanceMatrix::FromValues(0, 2, {}).ok());
  StatusOr<DistanceMatrix> ok =
      DistanceMatrix::FromValues(2, 2, {0.0, 1.0, 1.0, 0.0});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value().Distance(0, 1), 1.0);
}

TEST(DistanceMatrixTest, ReportsMemoryFootprint) {
  const Trajectory s = MakePlanarWalk(32, 5);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Euclidean()).value();
  EXPECT_GE(dg.MemoryBytes(), 32u * 32u * sizeof(double));
}

TEST(OnTheFlyDistanceTest, MatchesMaterializedMatrix) {
  const Trajectory s = MakePlanarWalk(18, 6);
  const Trajectory t = MakePlanarWalk(21, 7);
  const DistanceMatrix dg = DistanceMatrix::Build(s, t, Euclidean()).value();
  const OnTheFlyDistance fly(s, t, Euclidean());
  EXPECT_EQ(fly.rows(), dg.rows());
  EXPECT_EQ(fly.cols(), dg.cols());
  for (Index i = 0; i < dg.rows(); ++i) {
    for (Index j = 0; j < dg.cols(); ++j) {
      EXPECT_DOUBLE_EQ(fly.Distance(i, j), dg.Distance(i, j));
    }
  }
  EXPECT_EQ(fly.MemoryBytes(), 0u);
}

TEST(OnTheFlyDistanceTest, SingleTrajectoryFormIsSelfDistance) {
  const Trajectory s = MakePlanarWalk(10, 8);
  const OnTheFlyDistance fly(s, Euclidean());
  EXPECT_EQ(fly.rows(), 10);
  EXPECT_EQ(fly.cols(), 10);
  EXPECT_DOUBLE_EQ(fly.Distance(3, 3), 0.0);
}

// ---------------------------------------------------------------------------
// RingDistanceMatrix eviction boundaries
// ---------------------------------------------------------------------------

// Oracle: encode the *global* (row id, col id) pair into each cell so a
// read-back proves both which entries survived an eviction and that the
// logical->physical index mapping stayed aligned after the heads moved.
double CellOf(Index row_id, Index col_id) {
  return 1000.0 * static_cast<double>(row_id) + static_cast<double>(col_id);
}

TEST(RingDistanceMatrixTest, AppendRowEvictsOldestExactlyAtCapacity) {
  RingDistanceMatrix ring(/*row_capacity=*/3, /*col_capacity=*/2);
  ring.AppendCol([](Index) { return CellOf(0, 0); });  // no rows yet
  ring.AppendCol([](Index) { return CellOf(0, 1); });

  for (Index r = 0; r < 3; ++r) {
    ring.AppendRow([r](Index j) { return CellOf(r, j); });
    EXPECT_EQ(ring.rows(), r + 1) << "no eviction below capacity";
  }
  // The window is exactly full: one more row must evict logical row 0
  // and only logical row 0.
  ring.AppendRow([](Index j) { return CellOf(3, j); });
  EXPECT_EQ(ring.rows(), 3);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 2; ++j) {
      EXPECT_EQ(ring.Distance(i, j), CellOf(i + 1, j))
          << "window should hold global rows 1..3 at (" << i << "," << j
          << ")";
    }
  }
}

TEST(RingDistanceMatrixTest, HeadsWrapAcrossManyEvictions) {
  RingDistanceMatrix ring(/*row_capacity=*/3, /*col_capacity=*/4);
  for (Index j = 0; j < 4; ++j) {
    ring.AppendCol([](Index) { return 0.0; });
  }
  // Enough appends to lap the physical buffer several times.
  for (Index r = 0; r < 11; ++r) {
    ring.AppendRow([r](Index j) { return CellOf(r, j); });
  }
  EXPECT_EQ(ring.rows(), 3);
  EXPECT_EQ(ring.row_capacity(), 3);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) {
      EXPECT_EQ(ring.Distance(i, j), CellOf(8 + i, j));
    }
  }
}

TEST(RingDistanceMatrixTest, AppendColEvictsOldestColumn) {
  RingDistanceMatrix ring(/*row_capacity=*/2, /*col_capacity=*/3);
  ring.AppendRow([](Index) { return 0.0; });
  ring.AppendRow([](Index) { return 0.0; });
  for (Index c = 0; c < 5; ++c) {
    ring.AppendCol([c](Index i) { return CellOf(i, c); });
    EXPECT_LE(ring.cols(), 3) << "cols() must never exceed capacity";
  }
  EXPECT_EQ(ring.cols(), 3);
  for (Index i = 0; i < 2; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_EQ(ring.Distance(i, j), CellOf(i, j + 2));
    }
  }
}

TEST(RingDistanceMatrixTest, CapacityOneAlwaysHoldsTheNewestEntry) {
  RingDistanceMatrix ring(/*row_capacity=*/1, /*col_capacity=*/1);
  ring.AppendPoint([](Index) { return 0.0; }, [](Index) { return 0.0; },
                   /*self_distance=*/7.0);
  EXPECT_EQ(ring.rows(), 1);
  EXPECT_EQ(ring.cols(), 1);
  EXPECT_EQ(ring.Distance(0, 0), 7.0);
  ring.AppendPoint([](Index) { return 0.0; }, [](Index) { return 0.0; },
                   /*self_distance=*/9.0);
  EXPECT_EQ(ring.rows(), 1);
  EXPECT_EQ(ring.Distance(0, 0), 9.0);
}

TEST(RingDistanceMatrixTest, AppendPointEvictsBothDimensionsTogether) {
  RingDistanceMatrix ring(/*row_capacity=*/3, /*col_capacity=*/3);
  // Self-matrix over global point ids 0..4: cell (a, b) = CellOf(a, b),
  // with an asymmetric fill (row fill vs column fill differ by the
  // argument order) so a swapped callback would be caught.
  for (Index p = 0; p < 5; ++p) {
    const Index base = p >= 3 ? p - 2 : 0;  // oldest surviving global id
    ring.AppendPoint(
        [p, base](Index k) { return CellOf(p, base + k); },
        [p, base](Index k) { return CellOf(base + k, p); },
        /*self_distance=*/CellOf(p, p));
    EXPECT_EQ(ring.rows(), ring.cols()) << "self-matrix must stay square";
    EXPECT_LE(ring.rows(), 3);
  }
  // Window now holds global points 2..4 in both dimensions.
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_EQ(ring.Distance(i, j), CellOf(2 + i, 2 + j));
    }
  }
}

TEST(RingDistanceMatrixTest, FootprintIsCapacityBoundNotSizeBound) {
  RingDistanceMatrix ring(/*row_capacity=*/4, /*col_capacity=*/5);
  const std::size_t fresh = ring.MemoryBytes();
  EXPECT_EQ(fresh, 4u * 5u * sizeof(double));
  for (Index j = 0; j < 5; ++j) ring.AppendCol([](Index) { return 0.0; });
  for (Index r = 0; r < 9; ++r) {
    ring.AppendRow([](Index) { return 0.0; });
  }
  EXPECT_EQ(ring.MemoryBytes(), fresh) << "the ring never reallocates";
}

}  // namespace
}  // namespace frechet_motif
