#include "motif/top_k.h"

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "geo/metric.h"
#include "motif/btm.h"
#include "motif/subset_search.h"
#include "similarity/frechet.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;
using testing_util::MakeRandomSelfMatrix;

/// Oracle: the exact optimum of every candidate subset, by brute force.
std::vector<double> AllSubsetOptima(const DistanceMatrix& dg,
                                    const MotifOptions& options) {
  std::vector<double> optima;
  const Index n = dg.rows();
  ForEachValidSubset(options, n, n, [&](Index i, Index j) {
    double best = std::numeric_limits<double>::infinity();
    const Index ie_max =
        options.variant == MotifVariant::kSingleTrajectory ? j - 1 : n - 1;
    for (Index ie = i + options.min_length_xi + 1; ie <= ie_max; ++ie) {
      for (Index je = j + options.min_length_xi + 1; je <= n - 1; ++je) {
        best = std::min(best,
                        DiscreteFrechetOnRange(dg, i, ie, j, je).value());
      }
    }
    optima.push_back(best);
  });
  std::sort(optima.begin(), optima.end());
  return optima;
}

TEST(TopKTest, RejectsBadArguments) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(30, 1);
  TopKOptions options;
  options.motif.min_length_xi = 2;
  options.k = 0;
  EXPECT_FALSE(TopKMotifs(dg, options).ok());
  options.k = 3;
  options.min_start_separation = 0;
  EXPECT_FALSE(TopKMotifs(dg, options).ok());
}

TEST(TopKTest, TopOneMatchesBtm) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const DistanceMatrix dg = MakeRandomSelfMatrix(32, seed);
    TopKOptions options;
    options.motif.min_length_xi = 3;
    options.k = 1;
    BtmOptions btm;
    btm.motif = options.motif;
    StatusOr<std::vector<MotifResult>> top = TopKMotifs(dg, options);
    StatusOr<MotifResult> best = BtmMotif(dg, btm);
    ASSERT_TRUE(top.ok());
    ASSERT_TRUE(best.ok());
    ASSERT_EQ(top.value().size(), 1u);
    EXPECT_DOUBLE_EQ(top.value()[0].distance, best.value().distance)
        << "seed=" << seed;
  }
}

class TopKExactnessTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(TopKExactnessTest, MatchesKSmallestSubsetOptima) {
  const auto [k, seed] = GetParam();
  const DistanceMatrix dg = MakeRandomSelfMatrix(26, seed);
  TopKOptions options;
  options.motif.min_length_xi = 2;
  options.k = k;
  options.min_start_separation = 1;  // exact mode
  StatusOr<std::vector<MotifResult>> got = TopKMotifs(dg, options);
  ASSERT_TRUE(got.ok()) << got.status();
  const std::vector<double> oracle = AllSubsetOptima(dg, options.motif);
  ASSERT_EQ(got.value().size(),
            std::min<std::size_t>(k, oracle.size()));
  for (std::size_t r = 0; r < got.value().size(); ++r) {
    EXPECT_DOUBLE_EQ(got.value()[r].distance, oracle[r])
        << "rank " << r << " k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, TopKExactnessTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(7u, 8u, 9u)));

TEST(TopKTest, ResultsAscendAndAreValid) {
  const Trajectory s = MakePlanarWalk(120, 4);
  TopKOptions options;
  options.motif.min_length_xi = 10;
  options.k = 6;
  StatusOr<std::vector<MotifResult>> got =
      TopKMotifs(s, Euclidean(), options);
  ASSERT_TRUE(got.ok());
  const std::vector<MotifResult>& results = got.value();
  ASSERT_GE(results.size(), 2u);
  const DistanceMatrix dg = DistanceMatrix::Build(s, Euclidean()).value();
  for (std::size_t r = 0; r < results.size(); ++r) {
    EXPECT_TRUE(
        IsValidCandidate(results[r].best, options.motif, s.size(), s.size()));
    if (r > 0) {
      EXPECT_GE(results[r].distance, results[r - 1].distance);
    }
    // Reported distance is the pair's exact DFD.
    const Candidate c = results[r].best;
    EXPECT_DOUBLE_EQ(
        results[r].distance,
        DiscreteFrechetOnRange(dg, c.i, c.ie, c.j, c.je).value());
  }
}

TEST(TopKTest, SeparationIsHonoured) {
  const Trajectory s = MakePlanarWalk(140, 6);
  TopKOptions options;
  options.motif.min_length_xi = 10;
  options.k = 5;
  options.min_start_separation = 15;
  StatusOr<std::vector<MotifResult>> got =
      TopKMotifs(s, Euclidean(), options);
  ASSERT_TRUE(got.ok());
  const auto& results = got.value();
  for (std::size_t a = 0; a < results.size(); ++a) {
    for (std::size_t b = a + 1; b < results.size(); ++b) {
      const Index di = std::abs(results[a].best.i - results[b].best.i);
      const Index dj = std::abs(results[a].best.j - results[b].best.j);
      EXPECT_GE(std::max(di, dj), options.min_start_separation)
          << "results " << a << " and " << b << " too close";
    }
  }
}

TEST(TopKTest, DistinctSubsetsPerResult) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(28, 11);
  TopKOptions options;
  options.motif.min_length_xi = 2;
  options.k = 10;
  StatusOr<std::vector<MotifResult>> got = TopKMotifs(dg, options);
  ASSERT_TRUE(got.ok());
  std::map<std::pair<Index, Index>, int> starts;
  for (const MotifResult& r : got.value()) {
    ++starts[{r.best.i, r.best.j}];
  }
  for (const auto& [start, count] : starts) {
    EXPECT_EQ(count, 1) << "(" << start.first << "," << start.second << ")";
  }
}

TEST(TopKTest, KLargerThanPoolReturnsEverything) {
  // Tiny input: few valid subsets; ask for far more.
  const DistanceMatrix dg = MakeRandomSelfMatrix(10, 3);
  TopKOptions options;
  options.motif.min_length_xi = 1;
  options.k = 1000;
  StatusOr<std::vector<MotifResult>> got = TopKMotifs(dg, options);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(static_cast<std::int64_t>(got.value().size()),
            CountValidSubsets(options.motif, 10, 10));
}

TEST(TopKTest, CrossVariantWorks) {
  const Trajectory s = MakePlanarWalk(50, 8);
  const Trajectory t = MakePlanarWalk(55, 9);
  TopKOptions options;
  options.motif.min_length_xi = 5;
  options.k = 3;
  StatusOr<std::vector<MotifResult>> got =
      TopKMotifs(s, t, Euclidean(), options);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 3u);
  for (const MotifResult& r : got.value()) {
    MotifOptions cross = options.motif;
    cross.variant = MotifVariant::kCrossTrajectory;
    EXPECT_TRUE(IsValidCandidate(r.best, cross, s.size(), t.size()));
  }
}

}  // namespace
}  // namespace frechet_motif
