#include "motif/gtm.h"

#include <gtest/gtest.h>

#include "core/options.h"
#include "geo/metric.h"
#include "motif/brute_dp.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;
using testing_util::MakeRandomCrossMatrix;
using testing_util::MakeRandomSelfMatrix;

TEST(GtmTest, RejectsBadTau) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(30, 1);
  GtmOptions options;
  options.motif.min_length_xi = 2;
  options.group_size_tau = 0;
  EXPECT_FALSE(GtmMotif(dg, options).ok());
}

TEST(GtmTest, RejectsTooShortInput) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(9, 1);
  GtmOptions options;
  options.motif.min_length_xi = 4;
  EXPECT_FALSE(GtmMotif(dg, options).ok());
}

/// GTM must return the exact BruteDP distance for every τ, including τ=1
/// (degenerate BTM), non-powers of two, and τ larger than ξ.
class GtmAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, std::uint64_t>> {
};

TEST_P(GtmAgreementTest, MatchesBruteDpSingle) {
  const auto [n, xi, tau, seed] = GetParam();
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, seed);
  MotifOptions motif;
  motif.min_length_xi = xi;
  StatusOr<MotifResult> expect = BruteDpMotif(dg, motif);
  GtmOptions options;
  options.motif = motif;
  options.group_size_tau = tau;
  StatusOr<MotifResult> got = GtmMotif(dg, options);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got.value().found);
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance)
      << "n=" << n << " xi=" << xi << " tau=" << tau << " seed=" << seed;
}

TEST_P(GtmAgreementTest, MatchesBruteDpCross) {
  const auto [n, xi, tau, seed] = GetParam();
  const DistanceMatrix dg = MakeRandomCrossMatrix(n, n + 7, seed);
  MotifOptions motif;
  motif.min_length_xi = xi;
  motif.variant = MotifVariant::kCrossTrajectory;
  StatusOr<MotifResult> expect = BruteDpMotif(dg, motif);
  GtmOptions options;
  options.motif = motif;
  options.group_size_tau = tau;
  StatusOr<MotifResult> got = GtmMotif(dg, options);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance);
}

INSTANTIATE_TEST_SUITE_P(
    TauSweep, GtmAgreementTest,
    ::testing::Combine(::testing::Values(32, 48), ::testing::Values(2, 5),
                       ::testing::Values(1, 2, 3, 4, 8, 16),
                       ::testing::Values(5u, 6u)));

TEST(GtmTest, AgreesWithBruteDpOnEuclideanWalks) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trajectory s = MakePlanarWalk(80, seed);
    MotifOptions motif;
    motif.min_length_xi = 6;
    StatusOr<MotifResult> expect = BruteDpMotif(s, Euclidean(), motif);
    GtmOptions options;
    options.motif = motif;
    options.group_size_tau = 8;
    StatusOr<MotifResult> got = GtmMotif(s, Euclidean(), options);
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance)
        << "seed=" << seed;
  }
}

TEST(GtmTest, TauLargerThanTrajectoryStillExact) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(24, 13);
  MotifOptions motif;
  motif.min_length_xi = 2;
  GtmOptions options;
  options.motif = motif;
  options.group_size_tau = 64;  // single group pair at the top level
  StatusOr<MotifResult> expect = BruteDpMotif(dg, motif);
  StatusOr<MotifResult> got = GtmMotif(dg, options);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance);
}

TEST(GtmTest, GroupStatsArePopulated) {
  const Trajectory s = MakePlanarWalk(120, 3);
  GtmOptions options;
  options.motif.min_length_xi = 10;
  options.group_size_tau = 8;
  MotifStats stats;
  ASSERT_TRUE(GtmMotif(s, Euclidean(), options, &stats).ok());
  EXPECT_GT(stats.group_pairs_total, 0);
  EXPECT_GT(stats.gub_tightenings, 0);
  EXPECT_GT(stats.memory.peak_bytes(), 0u);
}

TEST(GtmTest, ResultCandidateIsValid) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(40, 17);
  GtmOptions options;
  options.motif.min_length_xi = 3;
  options.group_size_tau = 4;
  StatusOr<MotifResult> r = GtmMotif(dg, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().found);
  EXPECT_TRUE(IsValidCandidate(r.value().best, options.motif, 40, 40));
}

}  // namespace
}  // namespace frechet_motif
