// Tests of the mutable GridIndex operations and the incrementally
// maintained DFD ε-join: every Tick's delta accumulation must equal a
// from-scratch DfdSelfJoin over the current snapshots, while the verdict
// cache provably skips clean pairs.

#include <algorithm>
#include <vector>

#include "data/datasets.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "join/grid_index.h"
#include "join/incremental_join.h"
#include "join/similarity_join.h"
#include "test_util.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

BoundingBox Box(double min_x, double max_x, double min_y, double max_y) {
  return BoundingBox{min_x, max_x, min_y, max_y};
}

// --- Mutable GridIndex -------------------------------------------------------

TEST(GridIndexMutable, InsertUpdateRemoveKeepTheSupersetGuarantee) {
  auto grid = GridIndex::CreateEmpty(10.0);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(grid.value().Insert(0, Box(0, 5, 0, 5)).ok());
  ASSERT_TRUE(grid.value().Insert(1, Box(50, 55, 50, 55)).ok());
  ASSERT_TRUE(grid.value().Insert(2, Box(4, 12, 4, 12)).ok());
  EXPECT_EQ(3u, grid.value().size());

  // Duplicate insert / unknown update are errors.
  EXPECT_FALSE(grid.value().Insert(1, Box(0, 1, 0, 1)).ok());
  EXPECT_FALSE(grid.value().Update(9, Box(0, 1, 0, 1)).ok());
  EXPECT_FALSE(grid.value().Remove(9).ok());

  std::vector<std::size_t> near_origin =
      grid.value().Candidates(Box(1, 2, 1, 2));
  EXPECT_NE(near_origin.end(),
            std::find(near_origin.begin(), near_origin.end(), 0u));
  EXPECT_NE(near_origin.end(),
            std::find(near_origin.begin(), near_origin.end(), 2u));
  EXPECT_EQ(near_origin.end(),
            std::find(near_origin.begin(), near_origin.end(), 1u));

  // Slide box 0 across the grid: it must disappear near the origin and
  // appear at its new location.
  ASSERT_TRUE(grid.value().Update(0, Box(48, 53, 48, 53)).ok());
  near_origin = grid.value().Candidates(Box(1, 2, 1, 2));
  EXPECT_EQ(near_origin.end(),
            std::find(near_origin.begin(), near_origin.end(), 0u));
  std::vector<std::size_t> far = grid.value().Candidates(Box(49, 52, 49, 52));
  EXPECT_NE(far.end(), std::find(far.begin(), far.end(), 0u));
  EXPECT_NE(far.end(), std::find(far.begin(), far.end(), 1u));

  ASSERT_TRUE(grid.value().Remove(0).ok());
  EXPECT_EQ(2u, grid.value().size());
  far = grid.value().Candidates(Box(49, 52, 49, 52));
  EXPECT_EQ(far.end(), std::find(far.begin(), far.end(), 0u));
}

TEST(GridIndexMutable, RandomizedUpdatesMatchFreshBuild) {
  // After any sequence of Insert/Update/Remove, Candidates() must equal a
  // fresh Build over the surviving boxes, for every probe.
  Rng rng(20260730);
  auto grid = GridIndex::CreateEmpty(7.0);
  ASSERT_TRUE(grid.ok());
  std::vector<BoundingBox> live(16);
  std::vector<bool> present(16, false);

  const auto random_box = [&]() {
    const double x = rng.NextDouble(-40.0, 40.0);
    const double y = rng.NextDouble(-40.0, 40.0);
    return Box(x, x + rng.NextDouble(0.1, 25.0), y,
               y + rng.NextDouble(0.1, 25.0));
  };

  for (int step = 0; step < 300; ++step) {
    const std::size_t id = static_cast<std::size_t>(rng.NextInt(0, 15));
    if (!present[id]) {
      live[id] = random_box();
      ASSERT_TRUE(grid.value().Insert(id, live[id]).ok());
      present[id] = true;
    } else if (rng.NextInt(0, 3) == 0) {
      ASSERT_TRUE(grid.value().Remove(id).ok());
      present[id] = false;
    } else {
      live[id] = random_box();
      ASSERT_TRUE(grid.value().Update(id, live[id]).ok());
    }

    // Reference: rebuild from the live set (dense re-ids), probe both.
    const BoundingBox probe = random_box();
    std::vector<std::size_t> expected;
    for (std::size_t k = 0; k < live.size(); ++k) {
      if (present[k] && live[k].Intersects(probe)) expected.push_back(k);
    }
    const std::vector<std::size_t> got = grid.value().Candidates(probe);
    // Superset of true intersections, never a miss.
    for (const std::size_t id_expected : expected) {
      EXPECT_NE(got.end(), std::find(got.begin(), got.end(), id_expected))
          << "step " << step;
    }
    // And sorted and duplicate-free.
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(got.end(), std::adjacent_find(got.begin(), got.end()));
  }
}

// --- IncrementalDfdJoin ------------------------------------------------------

Trajectory GeoWalk(Index n, std::uint64_t seed) {
  DatasetOptions options;
  options.length = n;
  options.seed = seed;
  return MakeDataset(DatasetKind::kGeoLifeLike, options).value();
}

/// Asserts the incremental join's accumulated matches equal a
/// from-scratch DfdSelfJoin over `snapshots` (ids 0..n-1, all present).
void ExpectMatchesFromScratch(const IncrementalDfdJoin& join,
                              const std::vector<Trajectory>& snapshots,
                              const JoinOptions& options,
                              const GroundMetric& metric) {
  auto scratch = DfdSelfJoin(snapshots, metric, options);
  ASSERT_TRUE(scratch.ok()) << scratch.status();
  EXPECT_EQ(scratch.value(), join.CurrentMatches());
}

TEST(IncrementalDfdJoin, SlidingSnapshotsTrackFromScratchJoin) {
  const HaversineMetric metric;
  JoinOptions options;
  options.threshold = 2500.0;

  // Four streams: two near-identical, two different profiles. Slide a
  // 60-point window over each in steps of 15 and keep the join current.
  std::vector<Trajectory> full;
  full.push_back(GeoWalk(240, 1));
  full.push_back(GeoWalk(240, 1));
  full.push_back(GeoWalk(240, 77));
  {
    DatasetOptions truck;
    truck.length = 240;
    truck.seed = 5;
    full.push_back(MakeDataset(DatasetKind::kTruckLike, truck).value());
  }

  auto join = IncrementalDfdJoin::Create(options, metric);
  ASSERT_TRUE(join.ok());

  constexpr Index kWindow = 60;
  constexpr Index kStep = 15;
  std::vector<JoinPair> accumulated;
  int entered_seen = 0;
  for (Index start = 0; start + kWindow <= 240; start += kStep) {
    std::vector<Trajectory> snapshots;
    for (std::size_t s = 0; s < full.size(); ++s) {
      Trajectory window = full[s].Slice(start, start + kWindow - 1);
      snapshots.push_back(window);
      ASSERT_TRUE(join.value().Update(s, std::move(window)).ok());
    }
    auto delta = join.value().Tick();
    ASSERT_TRUE(delta.ok()) << delta.status();
    for (const JoinPair& p : delta.value().entered) {
      accumulated.push_back(p);
      ++entered_seen;
    }
    for (const JoinPair& p : delta.value().left) {
      const auto at = std::find(accumulated.begin(), accumulated.end(), p);
      ASSERT_NE(accumulated.end(), at);
      accumulated.erase(at);
    }
    std::sort(accumulated.begin(), accumulated.end(),
              [](const JoinPair& a, const JoinPair& b) {
                return a.li != b.li ? a.li < b.li : a.ri < b.ri;
              });
    EXPECT_EQ(accumulated, join.value().CurrentMatches());
    ExpectMatchesFromScratch(join.value(), snapshots, options, metric);
  }
  EXPECT_GT(entered_seen, 0);
  // The identical pair must be matched throughout.
  const std::vector<JoinPair> matches = join.value().CurrentMatches();
  EXPECT_NE(matches.end(),
            std::find(matches.begin(), matches.end(), JoinPair{0, 1}));
}

TEST(IncrementalDfdJoin, CleanPairsCarryVerdictsWithoutReverification) {
  const HaversineMetric metric;
  JoinOptions options;
  options.threshold = 5000.0;
  auto join = IncrementalDfdJoin::Create(options, metric);
  ASSERT_TRUE(join.ok());

  // Three members, all pairwise within ε (same seed → identical; third
  // close by construction of the generator's shared city model).
  ASSERT_TRUE(join.value().Update(0, GeoWalk(80, 3)).ok());
  ASSERT_TRUE(join.value().Update(1, GeoWalk(80, 3)).ok());
  ASSERT_TRUE(join.value().Update(2, GeoWalk(80, 3)).ok());
  ASSERT_TRUE(join.value().Tick().ok());
  ASSERT_EQ(3u, join.value().CurrentMatches().size());

  // Touch only member 2: the (0,1) verdict must be carried, not re-run;
  // the two pairs touching member 2 resolve either through the cascade
  // (still grid neighbors) or through the grid eviction (moved away).
  const std::int64_t reverified_before = join.value().stats().pairs_reverified;
  const std::int64_t evicted_before = join.value().stats().evicted_by_grid;
  ASSERT_TRUE(join.value().Update(2, GeoWalk(80, 4)).ok());
  auto delta = join.value().Tick();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(2, (join.value().stats().pairs_reverified - reverified_before) +
                   (join.value().stats().evicted_by_grid - evicted_before));
  EXPECT_GE(join.value().stats().verdicts_carried, 1);
}

TEST(IncrementalDfdJoin, RemoveEmitsLeftPairsOnNextTick) {
  const HaversineMetric metric;
  JoinOptions options;
  options.threshold = 5000.0;
  auto join = IncrementalDfdJoin::Create(options, metric);
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(join.value().Update(0, GeoWalk(80, 3)).ok());
  ASSERT_TRUE(join.value().Update(1, GeoWalk(80, 3)).ok());
  ASSERT_TRUE(join.value().Tick().ok());
  ASSERT_EQ(1u, join.value().CurrentMatches().size());

  ASSERT_TRUE(join.value().Remove(1).ok());
  auto delta = join.value().Tick();
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(1u, delta.value().left.size());
  EXPECT_EQ((JoinPair{0, 1}), delta.value().left[0]);
  EXPECT_TRUE(join.value().CurrentMatches().empty());
  EXPECT_FALSE(join.value().Remove(1).ok());  // already gone
}

TEST(IncrementalDfdJoin, ValidatesInputs) {
  const HaversineMetric metric;
  JoinOptions negative;
  negative.threshold = -1.0;
  EXPECT_FALSE(IncrementalDfdJoin::Create(negative, metric).ok());

  JoinOptions options;
  options.threshold = 100.0;
  auto join = IncrementalDfdJoin::Create(options, metric);
  ASSERT_TRUE(join.ok());
  EXPECT_FALSE(join.value().Update(0, Trajectory(std::vector<Point>{})).ok());
  EXPECT_FALSE(join.value().Remove(0).ok());
}

TEST(IncrementalDfdJoin, EuclideanRandomizedParity) {
  // Randomized update schedules on planar walks, checked against the
  // from-scratch join after every tick.
  const EuclideanMetric metric;
  JoinOptions options;
  options.threshold = 120.0;
  auto join = IncrementalDfdJoin::Create(options, metric);
  ASSERT_TRUE(join.ok());

  Rng rng(77);
  constexpr std::size_t kMembers = 6;
  std::vector<Trajectory> snapshots;
  for (std::size_t s = 0; s < kMembers; ++s) {
    snapshots.push_back(
        testing_util::MakePlanarWalk(40, 1000 + s, /*step=*/8.0));
    ASSERT_TRUE(join.value().Update(s, snapshots[s]).ok());
  }
  ASSERT_TRUE(join.value().Tick().ok());
  ExpectMatchesFromScratch(join.value(), snapshots, options, metric);

  for (int round = 0; round < 20; ++round) {
    // Touch 1-3 random members per round.
    const int touches = static_cast<int>(rng.NextInt(1, 3));
    for (int t = 0; t < touches; ++t) {
      const std::size_t id =
          static_cast<std::size_t>(rng.NextInt(0, kMembers - 1));
      snapshots[id] = testing_util::MakePlanarWalk(
          40, static_cast<std::uint64_t>(rng.NextInt(0, 1 << 20)),
          /*step=*/8.0);
      ASSERT_TRUE(join.value().Update(id, snapshots[id]).ok());
    }
    auto delta = join.value().Tick();
    ASSERT_TRUE(delta.ok()) << delta.status();
    ExpectMatchesFromScratch(join.value(), snapshots, options, metric);
  }
}

}  // namespace
}  // namespace frechet_motif
