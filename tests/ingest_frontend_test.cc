// Pins the IngestFrontend watermark tie semantics documented in
// stream/ingest_frontend.h: "late" means strictly below the watermark,
// equal-at-watermark arrivals are accepted, duplicate timestamps
// preserve arrival order (and are not counted as reordered), and the
// watermark only advances on release. These are deliberate boundary
// decisions — a change here is a behavior change, not a refactor.

#include <cmath>
#include <vector>

#include "geo/point.h"
#include "gtest/gtest.h"
#include "stream/ingest_frontend.h"
#include "util/binary_codec.h"

namespace frechet_motif {
namespace {

struct Release {
  Point p;
  bool has_ts = false;
  double ts = 0.0;
};

IngestFrontend::Sink Collect(std::vector<Release>* out) {
  return [out](const Point& p, const double* ts) {
    Release r;
    r.p = p;
    r.has_ts = ts != nullptr;
    r.ts = ts != nullptr ? *ts : 0.0;
    out->push_back(r);
    return Status::Ok();
  };
}

TEST(IngestFrontend, EqualAtWatermarkIsAcceptedStrictlyBelowIsDropped) {
  IngestFrontend frontend(/*reorder_capacity=*/2);
  std::vector<Release> released;
  const auto sink = Collect(&released);

  double ts = 10.0;
  ASSERT_TRUE(frontend.Offer(Point(1, 0), &ts, sink).ok());
  ts = 11.0;
  ASSERT_TRUE(frontend.Offer(Point(2, 0), &ts, sink).ok());
  ts = 12.0;
  ASSERT_TRUE(frontend.Offer(Point(3, 0), &ts, sink).ok());
  // Capacity 2: the third arrival released ts=10, so watermark == 10.
  ASSERT_EQ(1u, released.size());
  EXPECT_EQ(10.0, released[0].ts);
  EXPECT_EQ(10.0, frontend.watermark());

  // Exactly at the watermark: accepted (released in order after the
  // equal-stamped predecessor), NOT late-dropped.
  ts = 10.0;
  ASSERT_TRUE(frontend.Offer(Point(4, 0), &ts, sink).ok());
  ASSERT_EQ(2u, released.size());
  EXPECT_EQ(10.0, released[1].ts);
  EXPECT_EQ(Point(4, 0), released[1].p);
  EXPECT_EQ(0, frontend.stats().late_dropped);

  // Strictly below: provably too late, dropped and counted.
  ts = 9.999;
  ASSERT_TRUE(frontend.Offer(Point(5, 0), &ts, sink).ok());
  EXPECT_EQ(2u, released.size());
  EXPECT_EQ(1, frontend.stats().late_dropped);
}

TEST(IngestFrontend, DuplicateTimestampsPreserveArrivalOrder) {
  IngestFrontend frontend(/*reorder_capacity=*/3);
  std::vector<Release> released;
  const auto sink = Collect(&released);

  // Three equal stamps, distinguishable by x; then a later stamp to
  // push them all out.
  for (double x = 1.0; x <= 3.0; x += 1.0) {
    double ts = 5.0;
    ASSERT_TRUE(frontend.Offer(Point(x, 0), &ts, sink).ok());
  }
  ASSERT_TRUE(frontend.Flush(sink).ok());
  ASSERT_EQ(3u, released.size());
  EXPECT_EQ(Point(1, 0), released[0].p);
  EXPECT_EQ(Point(2, 0), released[1].p);
  EXPECT_EQ(Point(3, 0), released[2].p);

  // A run of equal stamps arriving at the watermark keeps coming out in
  // arrival order (each re-sets the watermark to the same value).
  released.clear();
  for (double x = 4.0; x <= 6.0; x += 1.0) {
    double ts = 5.0;
    ASSERT_TRUE(frontend.Offer(Point(x, 0), &ts, sink).ok());
  }
  ASSERT_TRUE(frontend.Flush(sink).ok());
  ASSERT_EQ(3u, released.size());
  EXPECT_EQ(Point(4, 0), released[0].p);
  EXPECT_EQ(Point(5, 0), released[1].p);
  EXPECT_EQ(Point(6, 0), released[2].p);
  EXPECT_EQ(0, frontend.stats().late_dropped);
}

TEST(IngestFrontend, DuplicatesAreNotCountedAsReordered) {
  IngestFrontend frontend(/*reorder_capacity=*/4);
  std::vector<Release> released;
  const auto sink = Collect(&released);

  double ts = 7.0;
  ASSERT_TRUE(frontend.Offer(Point(1, 0), &ts, sink).ok());
  ts = 7.0;  // equal to the largest buffered: kept its place, no fixing
  ASSERT_TRUE(frontend.Offer(Point(2, 0), &ts, sink).ok());
  EXPECT_EQ(0, frontend.stats().reordered);

  ts = 6.0;  // strictly below the largest buffered: this IS a reorder
  ASSERT_TRUE(frontend.Offer(Point(3, 0), &ts, sink).ok());
  EXPECT_EQ(1, frontend.stats().reordered);
}

TEST(IngestFrontend, WatermarkAdvancesOnlyOnRelease) {
  IngestFrontend frontend(/*reorder_capacity=*/8);
  std::vector<Release> released;
  const auto sink = Collect(&released);

  double ts = 100.0;
  ASSERT_TRUE(frontend.Offer(Point(1, 0), &ts, sink).ok());
  // Buffered, not released: the watermark must not have moved, so an
  // earlier arrival is still welcome.
  EXPECT_TRUE(released.empty());
  ts = 1.0;
  ASSERT_TRUE(frontend.Offer(Point(2, 0), &ts, sink).ok());
  EXPECT_EQ(0, frontend.stats().late_dropped);
  ASSERT_TRUE(frontend.Flush(sink).ok());
  ASSERT_EQ(2u, released.size());
  EXPECT_EQ(1.0, released[0].ts);
  EXPECT_EQ(100.0, released[1].ts);
  EXPECT_EQ(100.0, frontend.watermark());
}

TEST(IngestFrontend, SnapshotRoundTripPreservesDuplicateOrder) {
  IngestFrontend frontend(/*reorder_capacity=*/4);
  std::vector<Release> released;
  const auto sink = Collect(&released);
  for (double x = 1.0; x <= 3.0; x += 1.0) {
    double ts = 5.0;
    ASSERT_TRUE(frontend.Offer(Point(x, 0), &ts, sink).ok());
  }

  BinaryWriter writer;
  frontend.SaveTo(&writer);
  IngestFrontend restored(/*reorder_capacity=*/4);
  BinaryReader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadFrom(&reader).ok());
  EXPECT_EQ(frontend.buffered(), restored.buffered());

  std::vector<Release> a;
  std::vector<Release> b;
  ASSERT_TRUE(frontend.Flush(Collect(&a)).ok());
  ASSERT_TRUE(restored.Flush(Collect(&b)).ok());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].p, b[k].p) << "duplicate-stamp order diverged at " << k;
    EXPECT_EQ(a[k].ts, b[k].ts);
  }
}

TEST(IngestFrontend, PassthroughPathSharesTheSameTieRule) {
  // Capacity 0: timestamped arrivals pass straight through but keep the
  // watermark contract — equal accepted, strictly below dropped.
  IngestFrontend frontend(/*reorder_capacity=*/0);
  std::vector<Release> released;
  const auto sink = Collect(&released);

  double ts = 3.0;
  ASSERT_TRUE(frontend.Offer(Point(1, 0), &ts, sink).ok());
  ts = 3.0;
  ASSERT_TRUE(frontend.Offer(Point(2, 0), &ts, sink).ok());
  ASSERT_EQ(2u, released.size());
  EXPECT_EQ(Point(2, 0), released[1].p);
  EXPECT_EQ(0, frontend.stats().late_dropped);

  ts = 2.0;
  ASSERT_TRUE(frontend.Offer(Point(3, 0), &ts, sink).ok());
  EXPECT_EQ(2u, released.size());
  EXPECT_EQ(1, frontend.stats().late_dropped);
  EXPECT_EQ(2, frontend.stats().released);
}

TEST(IngestFrontend, BareArrivalsCannotMixWithANonEmptyBuffer) {
  IngestFrontend frontend(/*reorder_capacity=*/2);
  std::vector<Release> released;
  const auto sink = Collect(&released);

  // Bare arrivals alone are fine (pure passthrough).
  ASSERT_TRUE(frontend.Offer(Point(1, 0), nullptr, sink).ok());
  ASSERT_EQ(1u, released.size());
  EXPECT_FALSE(released[0].has_ts);

  // Buffer a timestamped point; now a bare arrival is ambiguous (it has
  // no place in timestamp order) and must be rejected, not reordered.
  double ts = 10.0;
  ASSERT_TRUE(frontend.Offer(Point(2, 0), &ts, sink).ok());
  ASSERT_EQ(1, frontend.buffered());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            frontend.Offer(Point(3, 0), nullptr, sink).code());

  // Draining the buffer makes bare arrivals legal again.
  ASSERT_TRUE(frontend.Flush(sink).ok());
  EXPECT_TRUE(frontend.Offer(Point(4, 0), nullptr, sink).ok());
}

TEST(IngestFrontend, NonFiniteStampsAreRejected) {
  IngestFrontend frontend(/*reorder_capacity=*/2);
  std::vector<Release> released;
  const auto sink = Collect(&released);
  const double nan = std::nan("");
  EXPECT_EQ(StatusCode::kInvalidArgument,
            frontend.Offer(Point(1, 0), &nan, sink).code());
}

}  // namespace
}  // namespace frechet_motif
