// Tests of the fleet streaming engine and its components: the
// dirty/staleness SearchScheduler, the watermark IngestFrontend, parity
// of MotifFleetEngine against independent monitors, budgeted slide
// coalescing, and the incremental ε-join deltas.

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "data/datasets.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "join/similarity_join.h"
#include "motif/motif.h"
#include "stream/ingest_frontend.h"
#include "stream/motif_fleet_engine.h"
#include "stream/search_scheduler.h"
#include "stream/streaming_motif_monitor.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

Trajectory GeoWalk(Index n, std::uint64_t seed) {
  DatasetOptions options;
  options.length = n;
  options.seed = seed;
  return MakeDataset(DatasetKind::kGeoLifeLike, options).value();
}

// --- SearchScheduler ---------------------------------------------------------

TEST(SearchScheduler, OrdersByDirtyAppendsThenStalenessThenId) {
  SearchScheduler scheduler;
  ASSERT_EQ(0u, scheduler.Register());
  ASSERT_EQ(1u, scheduler.Register());
  ASSERT_EQ(2u, scheduler.Register());
  ASSERT_EQ(3u, scheduler.Register());

  // Stream 1 is dirtiest; 0 and 2 tie on dirt but 2 was searched less
  // recently (never); 3 ties with 0 on everything except id.
  scheduler.NoteSearched(0);
  scheduler.NoteSearched(3);
  scheduler.NoteSearched(0);  // 0 searched most recently
  for (int k = 0; k < 3; ++k) scheduler.NoteAppend(1);
  scheduler.NoteAppend(0);
  scheduler.NoteAppend(2);
  scheduler.NoteAppend(3);
  for (std::size_t id = 0; id < 4; ++id) scheduler.MarkDue(id);

  const std::vector<std::size_t> order = scheduler.DrainOrder();
  ASSERT_EQ(4u, order.size());
  EXPECT_EQ(1u, order[0]);  // dirtiest
  EXPECT_EQ(2u, order[1]);  // never searched => most stale
  EXPECT_EQ(3u, order[2]);  // searched before 0's second search
  EXPECT_EQ(0u, order[3]);
}

TEST(SearchScheduler, NoteSearchedClearsDueAndDirt) {
  SearchScheduler scheduler;
  scheduler.Register();
  scheduler.NoteAppend(0);
  scheduler.MarkDue(0);
  EXPECT_TRUE(scheduler.IsDue(0));
  EXPECT_EQ(1u, scheduler.due_count());
  scheduler.NoteSearched(0);
  EXPECT_FALSE(scheduler.IsDue(0));
  EXPECT_EQ(0u, scheduler.due_count());
  EXPECT_TRUE(scheduler.DrainOrder().empty());
}

// --- IngestFrontend ----------------------------------------------------------

struct SinkLog {
  std::vector<double> timestamps;
  IngestFrontend::Sink AsSink() {
    return [this](const Point&, const double* ts) -> Status {
      timestamps.push_back(ts != nullptr ? *ts : -1.0);
      return Status::Ok();
    };
  }
};

TEST(IngestFrontend, ReordersWithinCapacity) {
  IngestFrontend frontend(/*reorder_capacity=*/3);
  SinkLog log;
  const Point p = LatLon(0, 0);
  // Arrivals 2, 1, 3, 0-late?, ... shuffled within a window of 3.
  for (const double ts : {2.0, 1.0, 3.0, 5.0, 4.0, 6.0, 7.0}) {
    ASSERT_TRUE(frontend.Offer(p, &ts, log.AsSink()).ok());
  }
  ASSERT_TRUE(frontend.Flush(log.AsSink()).ok());
  EXPECT_EQ((std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}),
            log.timestamps);
  EXPECT_EQ(0, frontend.stats().late_dropped);
  EXPECT_EQ(2, frontend.stats().reordered);
  EXPECT_EQ(7, frontend.stats().released);
}

TEST(IngestFrontend, DropsBelowWatermarkAndCounts) {
  IngestFrontend frontend(/*reorder_capacity=*/2);
  SinkLog log;
  const Point p = LatLon(0, 0);
  for (const double ts : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    ASSERT_TRUE(frontend.Offer(p, &ts, log.AsSink()).ok());
  }
  // Capacity 2 => 1, 2, 3 already released; 2.5 is below the watermark.
  const double late = 2.5;
  ASSERT_TRUE(frontend.Offer(p, &late, log.AsSink()).ok());
  ASSERT_TRUE(frontend.Flush(log.AsSink()).ok());
  EXPECT_EQ((std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}), log.timestamps);
  EXPECT_EQ(1, frontend.stats().late_dropped);
}

TEST(IngestFrontend, InOrderFeedPassesThroughUnchanged) {
  IngestFrontend frontend(/*reorder_capacity=*/4);
  SinkLog log;
  const Point p = LatLon(0, 0);
  for (const double ts : {1.0, 2.0, 2.0, 3.0}) {  // equal stamps allowed
    ASSERT_TRUE(frontend.Offer(p, &ts, log.AsSink()).ok());
  }
  ASSERT_TRUE(frontend.Flush(log.AsSink()).ok());
  EXPECT_EQ((std::vector<double>{1.0, 2.0, 2.0, 3.0}), log.timestamps);
  EXPECT_EQ(0, frontend.stats().reordered);
  EXPECT_EQ(0, frontend.stats().late_dropped);
}

TEST(IngestFrontend, RejectsNonFiniteTimestamps) {
  // NaN keys would break the reorder buffer's ordering invariant and a
  // NaN watermark would silently disable late-drop.
  SinkLog log;
  const Point p = LatLon(0, 0);
  const double nan_ts = std::numeric_limits<double>::quiet_NaN();
  const double inf_ts = std::numeric_limits<double>::infinity();
  IngestFrontend buffered(2);
  EXPECT_FALSE(buffered.Offer(p, &nan_ts, log.AsSink()).ok());
  EXPECT_FALSE(buffered.Offer(p, &inf_ts, log.AsSink()).ok());
  IngestFrontend pass_through(0);
  EXPECT_FALSE(pass_through.Offer(p, &nan_ts, log.AsSink()).ok());
  EXPECT_TRUE(log.timestamps.empty());
}

TEST(IngestFrontend, ZeroCapacityIsPassThrough) {
  IngestFrontend frontend(0);
  SinkLog log;
  const Point p = LatLon(0, 0);
  const double t1 = 5.0;
  const double t0 = 1.0;  // out of order, nothing to fix it with
  ASSERT_TRUE(frontend.Offer(p, &t1, log.AsSink()).ok());
  ASSERT_TRUE(frontend.Offer(p, &t0, log.AsSink()).ok());
  EXPECT_EQ((std::vector<double>{5.0}), log.timestamps);
  EXPECT_EQ(1, frontend.stats().late_dropped);
}

// --- Fleet <-> monitors parity ----------------------------------------------

StreamOptions SmallStreamOptions() {
  StreamOptions options;
  options.window_length = 70;
  options.slide_step = 10;
  options.min_length_xi = 10;
  return options;
}

void ExpectUpdateEq(const StreamUpdate& expected, const StreamUpdate& actual) {
  EXPECT_EQ(expected.window_start, actual.window_start);
  EXPECT_EQ(expected.motif.best, actual.motif.best);
  EXPECT_EQ(expected.motif.distance, actual.motif.distance);
  EXPECT_EQ(expected.seeded, actual.seeded);
  EXPECT_EQ(expected.carried, actual.carried);
  EXPECT_EQ(expected.stats.dfd_cells_computed, actual.stats.dfd_cells_computed);
}

TEST(FleetEngine, RoundRobinBitIdenticalToIndependentMonitors) {
  const HaversineMetric metric;
  const StreamOptions stream_options = SmallStreamOptions();
  constexpr std::size_t kStreams = 3;
  std::vector<Trajectory> data;
  for (std::size_t s = 0; s < kStreams; ++s) {
    data.push_back(GeoWalk(220, 100 + s));
  }

  std::vector<StreamingMotifMonitor> monitors;
  std::vector<std::vector<StreamUpdate>> expected(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    monitors.push_back(
        StreamingMotifMonitor::Create(stream_options, metric).value());
  }

  FleetOptions options;
  options.stream = stream_options;
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_EQ(s, fleet.value().AddStream().value());
  }

  std::vector<std::vector<StreamUpdate>> actual(kStreams);
  for (Index k = 0; k < 220; ++k) {
    std::vector<FleetArrival> batch;
    for (std::size_t s = 0; s < kStreams; ++s) {
      auto mu = monitors[s].Push(data[s][k]);
      ASSERT_TRUE(mu.ok()) << mu.status();
      if (mu.value().has_value()) expected[s].push_back(*mu.value());
      batch.push_back(FleetArrival{s, data[s][k], false, 0.0});
    }
    auto report = fleet.value().Ingest(batch);
    ASSERT_TRUE(report.ok()) << report.status();
    for (const FleetStreamUpdate& fu : report.value().updates) {
      actual[fu.stream].push_back(fu.update);
    }
  }

  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_EQ(expected[s].size(), actual[s].size()) << "stream " << s;
    for (std::size_t k = 0; k < expected[s].size(); ++k) {
      SCOPED_TRACE(::testing::Message() << "stream " << s << " update " << k);
      ExpectUpdateEq(expected[s][k], actual[s][k]);
    }
    // Window contents match too.
    EXPECT_EQ(monitors[s].WindowTrajectory().points(),
              fleet.value().WindowTrajectory(s).points());
  }
}

TEST(FleetEngine, MidBatchParityGuardRunsDueSearchBeforeFurtherAppends) {
  // Feed one stream's whole trajectory as a single Ingest batch: searches
  // must fire at exactly the same positions (same windows) as a monitor
  // pushing point by point.
  const HaversineMetric metric;
  const StreamOptions stream_options = SmallStreamOptions();
  const Trajectory t = GeoWalk(200, 7);

  auto monitor = StreamingMotifMonitor::Create(stream_options, metric);
  std::vector<StreamUpdate> expected;
  for (Index k = 0; k < t.size(); ++k) {
    auto mu = monitor.value().Push(t[k]);
    ASSERT_TRUE(mu.ok());
    if (mu.value().has_value()) expected.push_back(*mu.value());
  }

  FleetOptions options;
  options.stream = stream_options;
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(0u, fleet.value().AddStream().value());
  std::vector<FleetArrival> batch;
  for (Index k = 0; k < t.size(); ++k) {
    batch.push_back(FleetArrival{0, t[k], false, 0.0});
  }
  auto report = fleet.value().Ingest(batch);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(expected.size(), report.value().updates.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    SCOPED_TRACE(::testing::Message() << "update " << k);
    ExpectUpdateEq(expected[k], report.value().updates[k].update);
  }
}

TEST(FleetEngine, ReorderedFeedMatchesInOrderMonitor) {
  // Shuffle the arrival order within a disorder bound; a fleet with a
  // reorder buffer of that bound must report exactly what a monitor sees
  // on the in-order feed.
  const HaversineMetric metric;
  const StreamOptions stream_options = SmallStreamOptions();
  const Trajectory t = GeoWalk(200, 11);

  auto monitor = StreamingMotifMonitor::Create(stream_options, metric);
  std::vector<StreamUpdate> expected;
  for (Index k = 0; k < t.size(); ++k) {
    auto mu = monitor.value().Push(t[k], 10.0 * k);
    ASSERT_TRUE(mu.ok());
    if (mu.value().has_value()) expected.push_back(*mu.value());
  }

  // Deterministic local shuffle: swap adjacent pairs (disorder 1).
  std::vector<Index> order;
  for (Index k = 0; k + 1 < t.size(); k += 2) {
    order.push_back(k + 1);
    order.push_back(k);
  }
  if (t.size() % 2 == 1) order.push_back(t.size() - 1);

  FleetOptions options;
  options.stream = stream_options;
  options.reorder_capacity = 2;
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(0u, fleet.value().AddStream().value());
  std::vector<StreamUpdate> actual;
  for (const Index k : order) {
    auto report = fleet.value().Push(0, t[k], 10.0 * k);
    ASSERT_TRUE(report.ok()) << report.status();
    for (const FleetStreamUpdate& fu : report.value().updates) {
      actual.push_back(fu.update);
    }
  }
  auto flushed = fleet.value().Flush();
  ASSERT_TRUE(flushed.ok());
  for (const FleetStreamUpdate& fu : flushed.value().updates) {
    actual.push_back(fu.update);
  }

  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    SCOPED_TRACE(::testing::Message() << "update " << k);
    ExpectUpdateEq(expected[k], actual[k]);
  }
  EXPECT_EQ(0, fleet.value().stats().late_dropped);
  EXPECT_GT(fleet.value().stats().reordered, 0);
}

TEST(FleetEngine, LateDropsAreCountedAndDoNotCorruptTheWindow) {
  const HaversineMetric metric;
  FleetOptions options;
  options.stream = SmallStreamOptions();
  options.reorder_capacity = 2;
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(0u, fleet.value().AddStream().value());
  const Trajectory t = GeoWalk(120, 13);
  for (Index k = 0; k < t.size(); ++k) {
    ASSERT_TRUE(fleet.value().Push(0, t[k], 10.0 * k).ok());
  }
  // Far below the watermark: dropped, window untouched.
  const Index before = fleet.value().window_size(0);
  ASSERT_TRUE(fleet.value().Push(0, t[0], 5.0).ok());
  EXPECT_EQ(before, fleet.value().window_size(0));
  EXPECT_EQ(1, fleet.value().stats().late_dropped);
}

// --- Budgeted drains (slide coalescing) -------------------------------------

TEST(FleetEngine, BudgetedDrainCoalescesAndStaysExact) {
  const HaversineMetric metric;
  const StreamOptions stream_options = SmallStreamOptions();
  constexpr std::size_t kStreams = 4;
  std::vector<Trajectory> data;
  for (std::size_t s = 0; s < kStreams; ++s) {
    data.push_back(GeoWalk(240, 300 + s));
  }

  FleetOptions options;
  options.stream = stream_options;
  options.max_searches_per_drain = 2;  // half the fleet per drain
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());
  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_EQ(s, fleet.value().AddStream().value());
  }

  std::int64_t searches = 0;
  // Ingest one slide period at a time; each call may run at most 2
  // searches, and every update must match a from-scratch FindMotif on
  // the window at search time (checked right after the drain, before
  // any further appends).
  for (Index k0 = 0; k0 < 240; k0 += stream_options.slide_step) {
    std::vector<FleetArrival> batch;
    for (Index k = k0;
         k < std::min<Index>(240, k0 + stream_options.slide_step); ++k) {
      for (std::size_t s = 0; s < kStreams; ++s) {
        batch.push_back(FleetArrival{s, data[s][k], false, 0.0});
      }
    }
    auto report = fleet.value().Ingest(batch);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_LE(report.value().updates.size(), 2u);
    searches += static_cast<std::int64_t>(report.value().updates.size());
    for (const FleetStreamUpdate& fu : report.value().updates) {
      const Trajectory window = fleet.value().WindowTrajectory(fu.stream);
      auto scratch =
          FindMotif(window, metric, stream_options.BaselineOptions());
      ASSERT_TRUE(scratch.ok()) << scratch.status();
      EXPECT_EQ(scratch.value().best, fu.update.motif.best);
      EXPECT_EQ(scratch.value().distance, fu.update.motif.distance);
    }
  }
  // The budget forced deferrals: slides coalesced, fewer searches than
  // an unbudgeted fleet would have run.
  EXPECT_GT(fleet.value().stats().coalesced_slides, 0);
  const std::int64_t unbudgeted_slides =
      static_cast<std::int64_t>(kStreams) *
      ((240 - stream_options.window_length) / stream_options.slide_step + 1);
  EXPECT_LT(searches, unbudgeted_slides);
}

// --- Join deltas -------------------------------------------------------------

TEST(FleetEngine, JoinDeltasAccumulateToFromScratchSelfJoin) {
  const HaversineMetric metric;
  StreamOptions stream_options;
  stream_options.window_length = 60;
  stream_options.slide_step = 12;
  stream_options.min_length_xi = 8;

  FleetOptions options;
  options.stream = stream_options;
  options.join_epsilon = 2500.0;
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());

  // Streams 0 and 1 replay near-identical commutes (same seed family),
  // stream 2 a different vehicle profile: pairs should enter/leave ε as
  // the windows slide.
  constexpr std::size_t kStreams = 3;
  std::vector<Trajectory> data;
  data.push_back(GeoWalk(220, 41));
  data.push_back(GeoWalk(220, 41));
  {
    DatasetOptions truck;
    truck.length = 220;
    truck.seed = 99;
    data.push_back(MakeDataset(DatasetKind::kTruckLike, truck).value());
  }
  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_EQ(s, fleet.value().AddStream().value());
  }

  // Accumulate deltas and re-derive the expected matches from scratch
  // after every report. With one point per stream per batch, drains run
  // at batch end, so the windows at return time are exactly the
  // snapshots the searches (and the join) saw.
  std::vector<JoinPair> accumulated;
  int checks = 0;
  for (Index k = 0; k < 220; ++k) {
    std::vector<FleetArrival> batch;
    for (std::size_t s = 0; s < kStreams; ++s) {
      batch.push_back(FleetArrival{s, data[s][k], false, 0.0});
    }
    auto report = fleet.value().Ingest(batch);
    ASSERT_TRUE(report.ok()) << report.status();
    for (const JoinPair& p : report.value().join_delta.entered) {
      accumulated.push_back(p);
    }
    for (const JoinPair& p : report.value().join_delta.left) {
      const auto at = std::find(accumulated.begin(), accumulated.end(), p);
      ASSERT_NE(accumulated.end(), at) << "left a pair never entered";
      accumulated.erase(at);
    }
    if (report.value().updates.empty()) continue;
    ++checks;

    // The engine's own accumulated set matches the delta accumulation.
    std::vector<JoinPair> sorted = accumulated;
    std::sort(sorted.begin(), sorted.end(),
              [](const JoinPair& a, const JoinPair& b) {
                return a.li != b.li ? a.li < b.li : a.ri < b.ri;
              });
    EXPECT_EQ(sorted, fleet.value().CurrentJoinMatches());

    // All streams share one cadence, so every stream searched this batch:
    // the accumulated set must equal a from-scratch self-join over the
    // current windows.
    ASSERT_EQ(kStreams, report.value().updates.size());
    std::vector<Trajectory> windows;
    for (std::size_t s = 0; s < kStreams; ++s) {
      windows.push_back(fleet.value().WindowTrajectory(s));
    }
    auto scratch =
        DfdSelfJoin(windows, metric, options.JoinConfig());
    ASSERT_TRUE(scratch.ok()) << scratch.status();
    EXPECT_EQ(scratch.value(), sorted) << "after batch ending at point " << k;
  }
  EXPECT_GT(checks, 5);
  // At least the identical pair (0,1) must currently match.
  const std::vector<JoinPair> matches = fleet.value().CurrentJoinMatches();
  EXPECT_NE(matches.end(),
            std::find(matches.begin(), matches.end(), JoinPair{0, 1}));
}

// --- API edges ---------------------------------------------------------------

TEST(FleetEngine, ValidatesOptionsAndStreamIds) {
  const HaversineMetric metric;
  FleetOptions bad_window;
  bad_window.stream.window_length = 20;
  bad_window.stream.min_length_xi = 10;
  EXPECT_FALSE(MotifFleetEngine::Create(bad_window, metric).ok());

  FleetOptions bad_budget;
  bad_budget.stream = SmallStreamOptions();
  bad_budget.max_searches_per_drain = -1;
  EXPECT_FALSE(MotifFleetEngine::Create(bad_budget, metric).ok());

  FleetOptions bad_eps;
  bad_eps.stream = SmallStreamOptions();
  bad_eps.join_epsilon = 100.0;
  ASSERT_TRUE(MotifFleetEngine::Create(bad_eps, metric).ok());

  FleetOptions ok_options;
  ok_options.stream = SmallStreamOptions();
  auto fleet = MotifFleetEngine::Create(ok_options, metric);
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            fleet.value().Push(0, LatLon(0, 0)).status().code());
  ASSERT_EQ(0u, fleet.value().AddStream().value());
  EXPECT_TRUE(fleet.value().Push(0, LatLon(39.9, 116.3)).ok());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            fleet.value().Push(7, LatLon(0, 0)).status().code());
}

TEST(FleetEngine, StatsAggregateAcrossStreams) {
  const HaversineMetric metric;
  FleetOptions options;
  options.stream = SmallStreamOptions();
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(0u, fleet.value().AddStream().value());
  ASSERT_EQ(1u, fleet.value().AddStream().value());
  const Trajectory t = GeoWalk(150, 5);
  for (Index k = 0; k < t.size(); ++k) {
    ASSERT_TRUE(fleet.value().Push(0, t[k]).ok());
    ASSERT_TRUE(fleet.value().Push(1, t[k]).ok());
  }
  const FleetStats stats = fleet.value().stats();
  EXPECT_EQ(2, stats.streams);
  EXPECT_EQ(300, stats.points_ingested);
  EXPECT_GT(stats.searches, 0);
  EXPECT_GT(stats.ground_distances_computed, 0);
  EXPECT_EQ(stats.searches, 2 * ((150 - 70) / 10 + 1));
  // Identical streams do identical work.
  EXPECT_EQ(fleet.value().stream_stats(0).dfd_cells_computed,
            fleet.value().stream_stats(1).dfd_cells_computed);
}

// --- heterogeneous fleets ----------------------------------------------------

TEST(FleetEngine, CrossPairOccupiesTwoConsecutiveStreamIds) {
  const HaversineMetric metric;
  FleetOptions options;
  options.stream = SmallStreamOptions();
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(0u, fleet.value().AddStream().value());
  const auto pair = fleet.value().AddCrossPair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  EXPECT_EQ(1u, pair.value().first);
  EXPECT_EQ(2u, pair.value().second);
  ASSERT_EQ(3u, fleet.value().AddStream().value());
  EXPECT_EQ(4u, fleet.value().stream_count());
  EXPECT_EQ(3u, fleet.value().member_count());
}

TEST(FleetEngine, PerMemberOptionsAreHonoured) {
  const HaversineMetric metric;
  FleetOptions options;
  options.stream = SmallStreamOptions();
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());

  StreamOptions relaxed = options.stream;
  relaxed.approximation_epsilon = 0.25;
  ASSERT_EQ(0u, fleet.value().AddStream().value());
  ASSERT_EQ(1u, fleet.value().AddStream(relaxed).value());
  const auto pair = fleet.value().AddCrossPair(relaxed);
  ASSERT_TRUE(pair.ok()) << pair.status();

  EXPECT_EQ(0.0, fleet.value().stream_options(0).approximation_epsilon);
  EXPECT_EQ(0.25, fleet.value().stream_options(1).approximation_epsilon);
  EXPECT_EQ(0.25, fleet.value().stream_options(2).approximation_epsilon);
  EXPECT_EQ(0.25, fleet.value().stream_options(3).approximation_epsilon);

  // An invalid per-member configuration is rejected at Add time.
  StreamOptions bad = options.stream;
  bad.approximation_epsilon = -0.1;
  EXPECT_FALSE(fleet.value().AddStream(bad).ok());
  EXPECT_FALSE(fleet.value().AddCrossPair(bad).ok());
}

TEST(FleetEngine, HeterogeneousMembersMatchIndependentMonitors) {
  // One exact single stream, one ε-relaxed single stream, and one cross
  // pair behind the same scheduler — every member's reports must be
  // bit-identical to an independent monitor with that member's options.
  const HaversineMetric metric;
  const StreamOptions base = SmallStreamOptions();
  StreamOptions relaxed = base;
  relaxed.approximation_epsilon = 0.1;

  const Trajectory t0 = GeoWalk(200, 41);
  const Trajectory t1 = GeoWalk(200, 42);
  const Trajectory ta = GeoWalk(200, 43);
  const Trajectory tb = GeoWalk(200, 44);

  auto exact_monitor = StreamingMotifMonitor::Create(base, metric);
  auto relaxed_monitor = StreamingMotifMonitor::Create(relaxed, metric);
  auto cross_monitor = StreamingMotifMonitor::CreateCross(base, metric);
  ASSERT_TRUE(exact_monitor.ok());
  ASSERT_TRUE(relaxed_monitor.ok());
  ASSERT_TRUE(cross_monitor.ok());

  FleetOptions options;
  options.stream = base;
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(0u, fleet.value().AddStream().value());
  ASSERT_EQ(1u, fleet.value().AddStream(relaxed).value());
  const auto pair = fleet.value().AddCrossPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_EQ(2u, pair.value().first);
  ASSERT_EQ(3u, pair.value().second);

  // Per-stream expected updates, keyed by primary stream id.
  std::vector<std::vector<StreamUpdate>> expected(3);
  std::vector<std::vector<StreamUpdate>> actual(3);
  const auto collect = [](StatusOr<std::optional<StreamUpdate>> u,
                          std::vector<StreamUpdate>* into) {
    ASSERT_TRUE(u.ok()) << u.status();
    if (u.value().has_value()) into->push_back(*u.value());
  };
  for (Index k = 0; k < 200; ++k) {
    collect(exact_monitor.value().Push(t0[k]), &expected[0]);
    collect(relaxed_monitor.value().Push(t1[k]), &expected[1]);
    collect(cross_monitor.value().Push(ta[k]), &expected[2]);
    collect(cross_monitor.value().PushSecond(tb[k]), &expected[2]);

    std::vector<FleetArrival> batch;
    batch.push_back(FleetArrival{0, t0[k], false, 0.0});
    batch.push_back(FleetArrival{1, t1[k], false, 0.0});
    batch.push_back(FleetArrival{2, ta[k], false, 0.0});
    batch.push_back(FleetArrival{3, tb[k], false, 0.0});
    auto report = fleet.value().Ingest(batch);
    ASSERT_TRUE(report.ok()) << report.status();
    for (const FleetStreamUpdate& fu : report.value().updates) {
      ASSERT_LT(fu.stream, 3u);  // cross reports carry the side-0 id
      actual[fu.stream].push_back(fu.update);
    }
  }

  for (std::size_t s = 0; s < 3; ++s) {
    ASSERT_EQ(expected[s].size(), actual[s].size()) << "stream " << s;
    for (std::size_t k = 0; k < expected[s].size(); ++k) {
      SCOPED_TRACE(::testing::Message() << "stream " << s << " update " << k);
      ExpectUpdateEq(expected[s][k], actual[s][k]);
      EXPECT_EQ(expected[s][k].approximation_epsilon,
                actual[s][k].approximation_epsilon);
    }
  }
  // Side-aware window accessors expose both cross windows.
  EXPECT_EQ(cross_monitor.value().WindowTrajectory().points(),
            fleet.value().WindowTrajectory(2).points());
  EXPECT_EQ(cross_monitor.value().SecondWindowTrajectory().points(),
            fleet.value().WindowTrajectory(3).points());
}

TEST(FleetEngine, HeterogeneousSnapshotRestoreContinuesBitIdentically) {
  const HaversineMetric metric;
  const StreamOptions base = SmallStreamOptions();
  StreamOptions relaxed = base;
  relaxed.approximation_epsilon = 0.05;

  const Trajectory t0 = GeoWalk(220, 51);
  const Trajectory ta = GeoWalk(220, 52);
  const Trajectory tb = GeoWalk(220, 53);

  FleetOptions options;
  options.stream = base;
  auto fleet = MotifFleetEngine::Create(options, metric);
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(0u, fleet.value().AddStream(relaxed).value());
  ASSERT_TRUE(fleet.value().AddCrossPair().ok());

  const auto push_round = [&](MotifFleetEngine* engine, Index k,
                              std::vector<FleetStreamUpdate>* into) {
    std::vector<FleetArrival> batch;
    batch.push_back(FleetArrival{0, t0[k], false, 0.0});
    batch.push_back(FleetArrival{1, ta[k], false, 0.0});
    batch.push_back(FleetArrival{2, tb[k], false, 0.0});
    auto report = engine->Ingest(batch);
    ASSERT_TRUE(report.ok()) << report.status();
    for (const FleetStreamUpdate& fu : report.value().updates) {
      into->push_back(fu);
    }
  };

  std::vector<FleetStreamUpdate> reference;
  for (Index k = 0; k < 120; ++k) {
    push_round(&fleet.value(), k, &reference);
  }

  std::string snapshot;
  ASSERT_TRUE(fleet.value().Snapshot(&snapshot).ok());
  auto restored = MotifFleetEngine::Restore(options, metric, snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(3u, restored.value().stream_count());
  EXPECT_EQ(2u, restored.value().member_count());
  EXPECT_EQ(0.05,
            restored.value().stream_options(0).approximation_epsilon);

  // Both engines continue in lockstep; every future report must agree
  // bit for bit.
  std::vector<FleetStreamUpdate> original_tail;
  std::vector<FleetStreamUpdate> restored_tail;
  for (Index k = 120; k < 220; ++k) {
    push_round(&fleet.value(), k, &original_tail);
    push_round(&restored.value(), k, &restored_tail);
  }
  ASSERT_EQ(original_tail.size(), restored_tail.size());
  ASSERT_FALSE(original_tail.empty());
  for (std::size_t k = 0; k < original_tail.size(); ++k) {
    SCOPED_TRACE(::testing::Message() << "tail update " << k);
    EXPECT_EQ(original_tail[k].stream, restored_tail[k].stream);
    ExpectUpdateEq(original_tail[k].update, restored_tail[k].update);
  }
}

}  // namespace
}  // namespace frechet_motif
