// Direct unit tests for the real-filesystem implementation of the
// DurableFs seam (src/durable/durable_fs.cc) — especially its error
// paths, which the FaultFs-driven durability tests never reach:
// missing files, rename-over-existing with cached append descriptors,
// writes to a closed FIFO reader (EPIPE), and directory handling.

#include <csignal>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "durable/durable_fs.h"
#include "gtest/gtest.h"
#include "util/status.h"

namespace frechet_motif {
namespace {

/// Fresh scratch directory per test, removed on teardown.
class PosixFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/fmotif_posix_fs_XXXXXX";
    ASSERT_NE(nullptr, ::mkdtemp(tmpl));
    dir_ = tmpl;
  }

  void TearDown() override {
    // Best-effort recursive cleanup (one level deep: tests only create
    // flat files and one subdirectory).
    const StatusOr<std::vector<std::string>> entries = fs_.ListDir(dir_);
    if (entries.ok()) {
      for (const std::string& name : entries.value()) {
        const std::string path = dir_ + "/" + name;
        if (::unlink(path.c_str()) != 0) ::rmdir(path.c_str());
      }
    }
    ::rmdir(dir_.c_str());
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  PosixFs fs_;
  std::string dir_;
};

TEST_F(PosixFsTest, ReadMissingFileIsNotFound) {
  const StatusOr<std::string> r = fs_.ReadFile(Path("absent"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(StatusCode::kNotFound, r.status().code());
}

TEST_F(PosixFsTest, RemoveMissingFileIsNotFound) {
  const Status s = fs_.Remove(Path("absent"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kNotFound, s.code());
}

TEST_F(PosixFsTest, WriteReadRoundTripAndTruncate) {
  ASSERT_TRUE(fs_.WriteFile(Path("f"), "first contents").ok());
  ASSERT_TRUE(fs_.WriteFile(Path("f"), "2nd").ok());  // truncates
  const StatusOr<std::string> r = fs_.ReadFile(Path("f"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ("2nd", r.value());
}

TEST_F(PosixFsTest, AppendCreatesAndAccumulates) {
  ASSERT_TRUE(fs_.Append(Path("log"), "one").ok());
  ASSERT_TRUE(fs_.Append(Path("log"), "|two").ok());
  ASSERT_TRUE(fs_.Sync(Path("log")).ok());
  const StatusOr<std::string> r = fs_.ReadFile(Path("log"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ("one|two", r.value());
}

TEST_F(PosixFsTest, RenameOverExistingReplacesAndDropsCachedFd) {
  // Both paths have cached O_APPEND descriptors; the rename must close
  // them so later appends to the destination reopen the *new* inode
  // rather than resurrecting the replaced file.
  ASSERT_TRUE(fs_.Append(Path("src"), "new").ok());
  ASSERT_TRUE(fs_.Append(Path("dst"), "old-old-old").ok());
  ASSERT_TRUE(fs_.Rename(Path("src"), Path("dst")).ok());

  StatusOr<std::string> r = fs_.ReadFile(Path("dst"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ("new", r.value());
  EXPECT_FALSE(fs_.Exists(Path("src")).value());

  ASSERT_TRUE(fs_.Append(Path("dst"), "+tail").ok());
  r = fs_.ReadFile(Path("dst"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ("new+tail", r.value());
}

TEST_F(PosixFsTest, RenameMissingSourceFails) {
  const Status s = fs_.Rename(Path("absent"), Path("dst"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kIoError, s.code());
}

TEST_F(PosixFsTest, RemoveDropsCachedAppendFd) {
  ASSERT_TRUE(fs_.Append(Path("j"), "gen1").ok());
  ASSERT_TRUE(fs_.Remove(Path("j")).ok());
  // A fresh append must create a new file, not write into the unlinked
  // inode behind a stale descriptor.
  ASSERT_TRUE(fs_.Append(Path("j"), "gen2").ok());
  const StatusOr<std::string> r = fs_.ReadFile(Path("j"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ("gen2", r.value());
}

TEST_F(PosixFsTest, AppendToFifoWithoutReaderSurfacesIoError) {
  // A full or broken pipe is the classic short-write/EPIPE path. With
  // SIGPIPE ignored, the failed write(2) must come back as a Status,
  // not kill the process.
  const std::string fifo = Path("fifo");
  ASSERT_EQ(0, ::mkfifo(fifo.c_str(), 0600));
  struct sigaction old_sa = {};
  struct sigaction ign = {};
  ign.sa_handler = SIG_IGN;
  ASSERT_EQ(0, ::sigaction(SIGPIPE, &ign, &old_sa));

  // Open a reader, let PosixFs cache an append fd, then close the
  // reader so the next write hits EPIPE.
  const int reader = ::open(fifo.c_str(), O_RDONLY | O_NONBLOCK);
  ASSERT_GE(reader, 0);
  ASSERT_TRUE(fs_.Append(fifo, "x").ok());
  ::close(reader);
  const Status s = fs_.Append(fifo, "after reader closed");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kIoError, s.code());

  ::sigaction(SIGPIPE, &old_sa, nullptr);
}

TEST_F(PosixFsTest, ExistsDistinguishesFilesDirsAndAbsent) {
  EXPECT_FALSE(fs_.Exists(Path("nope")).value());
  ASSERT_TRUE(fs_.WriteFile(Path("f"), "x").ok());
  EXPECT_TRUE(fs_.Exists(Path("f")).value());
  ASSERT_TRUE(fs_.CreateDir(Path("sub")).ok());
  EXPECT_TRUE(fs_.Exists(Path("sub")).value());
}

TEST_F(PosixFsTest, CreateDirIsIdempotentButListDirOfMissingFails) {
  ASSERT_TRUE(fs_.CreateDir(Path("sub")).ok());
  ASSERT_TRUE(fs_.CreateDir(Path("sub")).ok());  // EEXIST is fine
  const StatusOr<std::vector<std::string>> missing =
      fs_.ListDir(Path("no_such_dir"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(StatusCode::kIoError, missing.status().code());
}

TEST_F(PosixFsTest, ListDirReturnsEntryNamesWithoutDotEntries) {
  ASSERT_TRUE(fs_.WriteFile(Path("a"), "1").ok());
  ASSERT_TRUE(fs_.WriteFile(Path("b"), "2").ok());
  const StatusOr<std::vector<std::string>> entries = fs_.ListDir(dir_);
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> names = entries.value();
  std::sort(names.begin(), names.end());
  EXPECT_EQ((std::vector<std::string>{"a", "b"}), names);
}

TEST_F(PosixFsTest, SyncOfMissingPathFails) {
  const Status s = fs_.Sync(Path("absent"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kIoError, s.code());
}

}  // namespace
}  // namespace frechet_motif
