#include "symbolic/symbolic.h"

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "similarity/frechet.h"

namespace frechet_motif {
namespace {

/// Builds a trajectory from meter-frame waypoints around `origin`, with
/// `points_per_leg` samples per leg.
Trajectory FromWaypoints(const Point& origin,
                         const std::vector<Point>& waypoints,
                         Index points_per_leg) {
  Trajectory t;
  double clock = 0.0;
  for (std::size_t w = 0; w + 1 < waypoints.size(); ++w) {
    for (Index k = 0; k < points_per_leg; ++k) {
      const double f =
          static_cast<double>(k) / static_cast<double>(points_per_leg);
      const double x = waypoints[w].x + f * (waypoints[w + 1].x -
                                             waypoints[w].x);
      const double y = waypoints[w].y + f * (waypoints[w + 1].y -
                                             waypoints[w].y);
      t.Append(OffsetByMeters(origin, x, y), clock);
      clock += 1.0;
    }
  }
  t.Append(OffsetByMeters(origin, waypoints.back().x, waypoints.back().y),
           clock);
  return t;
}

/// An "RVLH"-style tour: east, then north (right-to-left turn structure),
/// then west, then... shaped to produce straights and turns.
std::vector<Point> SquareTour(double size) {
  return {{0, 0},      {size, 0},     {size, size},
          {0, size},   {0, 0}};
}

TEST(SymbolizerTest, RejectsDegenerateInputs) {
  SymbolizerOptions options;
  options.fragment_length = 1;
  Trajectory t = FromWaypoints(LatLon(40, 116), SquareTour(400), 10);
  EXPECT_FALSE(SymbolizeTrajectory(t, options).ok());
  options.fragment_length = 1000;  // fewer than two fragments
  EXPECT_FALSE(SymbolizeTrajectory(t, options).ok());
}

TEST(SymbolizerTest, StraightEastIsHorizontal) {
  const Trajectory t =
      FromWaypoints(LatLon(40, 116), {{0, 0}, {800, 0}}, 40);
  SymbolizerOptions options;
  options.fragment_length = 8;
  const std::string s = SymbolizeTrajectory(t, options).value();
  for (const char c : s) EXPECT_EQ(c, 'H') << s;
}

TEST(SymbolizerTest, StraightNorthIsVertical) {
  const Trajectory t =
      FromWaypoints(LatLon(40, 116), {{0, 0}, {0, 800}}, 40);
  SymbolizerOptions options;
  options.fragment_length = 8;
  const std::string s = SymbolizeTrajectory(t, options).value();
  for (const char c : s) EXPECT_EQ(c, 'V') << s;
}

TEST(SymbolizerTest, SquareTourContainsTurns) {
  const Trajectory t =
      FromWaypoints(LatLon(40, 116), SquareTour(600), 30);
  SymbolizerOptions options;
  options.fragment_length = 10;
  const std::string s = SymbolizeTrajectory(t, options).value();
  // Counter-clockwise square: must contain left turns and both axis runs.
  EXPECT_NE(s.find('L'), std::string::npos) << s;
  EXPECT_NE(s.find('H'), std::string::npos) << s;
  EXPECT_NE(s.find('V'), std::string::npos) << s;
}

TEST(SymbolizerTest, Figure4FalsePositive) {
  // The paper's Figure 4: the same tour shape in Beijing and in Shenzhen
  // maps to the *same* string although the trajectories are ~2000 km
  // apart — the symbolic approach cannot capture spatial distance.
  const Trajectory beijing =
      FromWaypoints(LatLon(39.9042, 116.4074), SquareTour(500), 25);
  const Trajectory shenzhen =
      FromWaypoints(LatLon(22.5431, 114.0579), SquareTour(500), 25);
  SymbolizerOptions options;
  options.fragment_length = 10;
  const std::string s1 = SymbolizeTrajectory(beijing, options).value();
  const std::string s2 = SymbolizeTrajectory(shenzhen, options).value();
  EXPECT_EQ(s1, s2);
  // ...whereas DFD sees the geographic gap:
  const double dfd = DiscreteFrechet(beijing, shenzhen, Haversine()).value();
  EXPECT_GT(dfd, 1.0e6);
}

TEST(SymbolicMotifTest, FindsPlantedRepeat) {
  // Tour A twice with a connector: the longest repeated word must cover a
  // large part of one tour occurrence.
  std::vector<Point> waypoints = SquareTour(600);
  waypoints.push_back(Point(1500, 1500));  // connector
  for (const Point& p : SquareTour(600)) {
    waypoints.push_back(Point(p.x + 3000, p.y + 3000));  // same shape, moved
  }
  const Trajectory t = FromWaypoints(LatLon(40, 116), waypoints, 25);
  SymbolizerOptions options;
  options.fragment_length = 10;
  const StatusOr<SymbolicMotif> motif =
      SymbolicMotifDiscovery(t, options, /*min_length=*/3);
  ASSERT_TRUE(motif.ok()) << motif.status();
  EXPECT_GE(static_cast<Index>(motif.value().word.size()), 3);
  // Non-overlap in fragment space.
  EXPECT_LE(motif.value().first_fragment +
                static_cast<Index>(motif.value().word.size()),
            motif.value().second_fragment);
  // But note: the two occurrences are kilometers apart — a false positive
  // for spatial motif discovery, which is the paper's point.
}

TEST(SymbolicMotifTest, NotFoundWhenNoRepeatLongEnough) {
  // A single straight line has the all-same string, so repeats exist; use
  // min_length above half the string to force NotFound.
  const Trajectory t =
      FromWaypoints(LatLon(40, 116), {{0, 0}, {900, 0}}, 30);
  SymbolizerOptions options;
  options.fragment_length = 10;
  const std::string s = SymbolizeTrajectory(t, options).value();
  const StatusOr<SymbolicMotif> motif = SymbolicMotifDiscovery(
      t, options, static_cast<Index>(s.size()));
  EXPECT_FALSE(motif.ok());
  EXPECT_EQ(motif.status().code(), StatusCode::kNotFound);
}

TEST(SymbolicMotifTest, PointRangesMatchFragmentRanges) {
  const Trajectory t = MakeDataset(DatasetKind::kTruckLike,
                                   DatasetOptions{.length = 600, .seed = 3})
                           .value();
  SymbolizerOptions options;
  options.fragment_length = 8;
  const StatusOr<SymbolicMotif> motif =
      SymbolicMotifDiscovery(t, options, 2);
  if (!motif.ok()) GTEST_SKIP() << "no repeat in this trace";
  const SymbolicMotif& m = motif.value();
  EXPECT_EQ(m.first_points.first, m.first_fragment * 8);
  EXPECT_EQ(m.first_points.length(),
            static_cast<Index>(m.word.size()) * 8);
  EXPECT_EQ(m.second_points.length(), m.first_points.length());
}

}  // namespace
}  // namespace frechet_motif
