#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/datasets.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/planted.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------- generator

TEST(GeneratorTest, WalkRejectsBadCount) {
  Rng rng(1);
  WalkParams params;
  EXPECT_FALSE(GenerateWalk(params, 0, 0.0, &rng).ok());
}

TEST(GeneratorTest, WalkProducesRequestedLengthWithTimestamps) {
  Rng rng(2);
  WalkParams params;
  const Trajectory t = GenerateWalk(params, 200, 100.0, &rng).value();
  EXPECT_EQ(t.size(), 200);
  ASSERT_TRUE(t.has_timestamps());
  EXPECT_DOUBLE_EQ(t.timestamp(0), 100.0);
  for (Index i = 1; i < t.size(); ++i) {
    EXPECT_GT(t.timestamp(i), t.timestamp(i - 1));
  }
}

TEST(GeneratorTest, WalkIsDeterministicGivenSeed) {
  WalkParams params;
  Rng rng1(7);
  Rng rng2(7);
  const Trajectory a = GenerateWalk(params, 50, 0.0, &rng1).value();
  const Trajectory b = GenerateWalk(params, 50, 0.0, &rng2).value();
  for (Index i = 0; i < 50; ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_DOUBLE_EQ(a.timestamp(i), b.timestamp(i));
  }
}

TEST(GeneratorTest, WalkStepSizesMatchSpeedScale) {
  WalkParams params;
  params.mean_speed_mps = 2.0;
  params.base_period_s = 10.0;
  params.dropout_probability = 0.0;
  params.period_jitter = 0.0;
  params.speed_jitter = 0.0;
  params.gps_noise_m = 0.0;
  Rng rng(3);
  const Trajectory t = GenerateWalk(params, 100, 0.0, &rng).value();
  for (Index i = 1; i < t.size(); ++i) {
    const double d = GreatCircleDistanceMeters(t[i - 1], t[i]);
    EXPECT_NEAR(d, 20.0, 1.0) << "step " << i;  // 2 m/s * 10 s
  }
}

TEST(GeneratorTest, DropoutCreatesTimeGaps) {
  WalkParams params;
  params.dropout_probability = 0.3;
  params.dropout_max_run = 4;
  params.period_jitter = 0.0;
  Rng rng(4);
  const Trajectory t = GenerateWalk(params, 300, 0.0, &rng).value();
  int gaps = 0;
  for (Index i = 1; i < t.size(); ++i) {
    if (t.timestamp(i) - t.timestamp(i - 1) > 1.5 * params.base_period_s) {
      ++gaps;
    }
  }
  EXPECT_GT(gaps, 10) << "expected missing-sample gaps";
}

TEST(GeneratorTest, FollowRouteReachesLastWaypoint) {
  WalkParams params;
  params.mean_speed_mps = 10.0;
  params.turn_stddev_rad = 0.02;
  Rng rng(5);
  Route route = {Point(0, 0), Point(500, 0), Point(500, 500)};
  const Trajectory t =
      FollowRoute(params, route, 30.0, 5000, 0.0, &rng).value();
  ASSERT_GT(t.size(), 5);
  const Point end_m = MetersFromOrigin(params.origin, t[t.size() - 1]);
  EXPECT_NEAR(end_m.x, 500.0, 120.0);
  EXPECT_NEAR(end_m.y, 500.0, 120.0);
}

TEST(GeneratorTest, FollowRouteRejectsEmptyRoute) {
  WalkParams params;
  Rng rng(6);
  EXPECT_FALSE(FollowRoute(params, {}, 10.0, 100, 0.0, &rng).ok());
}

TEST(GeneratorTest, RandomRouteRespectsGridSnap) {
  Rng rng(8);
  const Route route = MakeRandomRoute(12, 1000.0, 250.0, &rng);
  ASSERT_EQ(route.size(), 12u);
  for (std::size_t k = 1; k < route.size(); ++k) {
    EXPECT_NEAR(std::fmod(std::abs(route[k].x), 250.0), 0.0, 1e-6);
    EXPECT_NEAR(std::fmod(std::abs(route[k].y), 250.0), 0.0, 1e-6);
  }
}

// ----------------------------------------------------------------- datasets

TEST(DatasetsTest, NamesAreStable) {
  EXPECT_EQ(DatasetName(DatasetKind::kGeoLifeLike), "GeoLife-like");
  EXPECT_EQ(DatasetName(DatasetKind::kTruckLike), "Truck-like");
  EXPECT_EQ(DatasetName(DatasetKind::kBaboonLike), "Wild-Baboon-like");
}

TEST(DatasetsTest, RejectsNonPositiveLength) {
  DatasetOptions options;
  options.length = 0;
  EXPECT_FALSE(MakeDataset(DatasetKind::kGeoLifeLike, options).ok());
}

class DatasetKindTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(DatasetKindTest, ProducesExactLengthAndValidData) {
  DatasetOptions options;
  options.length = 700;
  options.seed = 99;
  const Trajectory t = MakeDataset(GetParam(), options).value();
  EXPECT_EQ(t.size(), 700);
  ASSERT_TRUE(t.has_timestamps());
  for (Index i = 0; i < t.size(); ++i) {
    EXPECT_TRUE(t[i].IsFinite());
    if (i > 0) {
      EXPECT_GT(t.timestamp(i), t.timestamp(i - 1));
    }
  }
}

TEST_P(DatasetKindTest, DeterministicGivenSeed) {
  DatasetOptions options;
  options.length = 300;
  options.seed = 5;
  const Trajectory a = MakeDataset(GetParam(), options).value();
  const Trajectory b = MakeDataset(GetParam(), options).value();
  for (Index i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(DatasetKindTest, DifferentSeedsDiffer) {
  DatasetOptions a_options;
  a_options.length = 200;
  a_options.seed = 1;
  DatasetOptions b_options = a_options;
  b_options.seed = 2;
  const Trajectory a = MakeDataset(GetParam(), a_options).value();
  const Trajectory b = MakeDataset(GetParam(), b_options).value();
  bool any_difference = false;
  for (Index i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = !(a[i] == b[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST_P(DatasetKindTest, StaysWithinMetropolitanExtent) {
  DatasetOptions options;
  options.length = 1000;
  const Trajectory t = MakeDataset(GetParam(), options).value();
  for (Index i = 1; i < t.size(); ++i) {
    EXPECT_LT(GreatCircleDistanceMeters(t[0], t[i]), 100000.0)
        << "point " << i << " left the metro area";
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DatasetKindTest,
                         ::testing::ValuesIn(kAllDatasetKinds));

TEST(DatasetsTest, SamplingPeriodsAreNonUniform) {
  DatasetOptions options;
  options.length = 500;
  const Trajectory t =
      MakeDataset(DatasetKind::kGeoLifeLike, options).value();
  double min_dt = 1e18;
  double max_dt = 0.0;
  for (Index i = 1; i < t.size(); ++i) {
    const double dt = t.timestamp(i) - t.timestamp(i - 1);
    min_dt = std::min(min_dt, dt);
    max_dt = std::max(max_dt, dt);
  }
  EXPECT_GT(max_dt / min_dt, 2.0) << "GeoLife-like sampling should vary";
}

// ------------------------------------------------------------------ planted

TEST(PlantedTest, ValidatesArguments) {
  DatasetOptions options;
  options.length = 200;
  const Trajectory base =
      MakeDataset(DatasetKind::kGeoLifeLike, options).value();
  EXPECT_FALSE(PlantMotif(base, 0, 0, 10, 5.0, 1).ok());
  EXPECT_FALSE(PlantMotif(base, 150, 100, 10, 5.0, 1).ok());  // overruns
  EXPECT_FALSE(PlantMotif(base, 10, 20, 10, -1.0, 1).ok());
}

TEST(PlantedTest, LayoutIsOriginalBridgeCopy) {
  DatasetOptions options;
  options.length = 150;
  const Trajectory base =
      MakeDataset(DatasetKind::kTruckLike, options).value();
  const PlantedMotif planted =
      PlantMotif(base, 20, 30, 15, 8.0, 7).value();
  EXPECT_EQ(planted.original.first, 20);
  EXPECT_EQ(planted.original.last, 49);
  EXPECT_EQ(planted.copy.first, 150 + 15);
  EXPECT_EQ(planted.copy.last, 150 + 15 + 29);
  EXPECT_EQ(planted.trajectory.size(), 150 + 15 + 30);
  EXPECT_TRUE(planted.trajectory.has_timestamps());
}

TEST(PlantedTest, CopyPointsStayWithinNoiseRadius) {
  DatasetOptions options;
  options.length = 120;
  const Trajectory base =
      MakeDataset(DatasetKind::kBaboonLike, options).value();
  const double noise = 4.0;
  const PlantedMotif planted =
      PlantMotif(base, 10, 25, 10, noise, 3).value();
  for (Index k = 0; k < 25; ++k) {
    const double d = GreatCircleDistanceMeters(
        planted.trajectory[planted.original.first + k],
        planted.trajectory[planted.copy.first + k]);
    EXPECT_LE(d, planted.dfd_upper_bound_m) << "offset " << k;
  }
}

// ----------------------------------------------------------------------- io

TEST(IoTest, CsvRoundTripWithTimestamps) {
  DatasetOptions options;
  options.length = 80;
  const Trajectory t =
      MakeDataset(DatasetKind::kGeoLifeLike, options).value();
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(t, path).ok());
  const Trajectory back = ReadCsv(path).value();
  ASSERT_EQ(back.size(), t.size());
  ASSERT_TRUE(back.has_timestamps());
  for (Index i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(back[i].lat(), t[i].lat(), 1e-7);
    EXPECT_NEAR(back[i].lon(), t[i].lon(), 1e-7);
    EXPECT_NEAR(back.timestamp(i), t.timestamp(i), 1e-2);
  }
  std::remove(path.c_str());
}

TEST(IoTest, CsvRoundTripWithoutTimestamps) {
  Trajectory t({LatLon(1.5, 2.5), LatLon(3.5, 4.5)});
  const std::string path = TempPath("plain.csv");
  ASSERT_TRUE(WriteCsv(t, path).ok());
  const Trajectory back = ReadCsv(path).value();
  ASSERT_EQ(back.size(), 2);
  EXPECT_FALSE(back.has_timestamps());
  std::remove(path.c_str());
}

TEST(IoTest, CrlfCsvParsesIdenticallyToLfTwin) {
  // Windows-authored file: CRLF line endings, a blank CRLF line in the
  // middle and a trailing one — both used to be fatal ("malformed CSV
  // row"), and the \r previously leaked into the last field.
  const std::string lf_path = TempPath("unix.csv");
  const std::string crlf_path = TempPath("windows.csv");
  {
    FILE* f = fopen(lf_path.c_str(), "w");
    fputs("lat,lon,timestamp\n39.9,116.3,100.5\n\n39.95,116.35,101.5\n\n",
          f);
    fclose(f);
    f = fopen(crlf_path.c_str(), "w");
    fputs(
        "lat,lon,timestamp\r\n39.9,116.3,100.5\r\n\r\n"
        "39.95,116.35,101.5\r\n\r\n",
        f);
    fclose(f);
  }
  const Trajectory lf = ReadCsv(lf_path).value();
  StatusOr<Trajectory> crlf = ReadCsv(crlf_path);
  ASSERT_TRUE(crlf.ok()) << crlf.status();
  ASSERT_EQ(lf.size(), crlf.value().size());
  for (Index i = 0; i < lf.size(); ++i) {
    EXPECT_EQ(lf[i].lat(), crlf.value()[i].lat());
    EXPECT_EQ(lf[i].lon(), crlf.value()[i].lon());
    EXPECT_EQ(lf.timestamp(i), crlf.value().timestamp(i));
  }
  std::remove(lf_path.c_str());
  std::remove(crlf_path.c_str());
}

TEST(IoTest, CrlfPltParsesIdenticallyToLfTwin) {
  DatasetOptions options;
  options.length = 20;
  const Trajectory t = MakeDataset(DatasetKind::kTruckLike, options).value();
  const std::string lf_path = TempPath("unix.plt");
  ASSERT_TRUE(WritePlt(t, lf_path).ok());
  // Re-author the same file with CRLF endings.
  std::string content;
  {
    FILE* f = fopen(lf_path.c_str(), "r");
    char buf[4096];
    std::size_t n = 0;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
    fclose(f);
  }
  std::string crlf_content;
  for (char c : content) {
    if (c == '\n') crlf_content += '\r';
    crlf_content += c;
  }
  const std::string crlf_path = TempPath("windows.plt");
  {
    FILE* f = fopen(crlf_path.c_str(), "w");
    fwrite(crlf_content.data(), 1, crlf_content.size(), f);
    fclose(f);
  }
  const Trajectory lf = ReadPlt(lf_path).value();
  StatusOr<Trajectory> crlf = ReadPlt(crlf_path);
  ASSERT_TRUE(crlf.ok()) << crlf.status();
  ASSERT_EQ(lf.size(), crlf.value().size());
  for (Index i = 0; i < lf.size(); ++i) {
    EXPECT_EQ(lf[i].lat(), crlf.value()[i].lat());
    EXPECT_EQ(lf.timestamp(i), crlf.value().timestamp(i));
  }
  std::remove(lf_path.c_str());
  std::remove(crlf_path.c_str());
}

TEST(IoTest, ParseCsvPointRowClassifiesLines) {
  double lat = 0.0;
  double lon = 0.0;
  double ts = 0.0;
  bool has_ts = false;
  EXPECT_EQ(CsvRow::kBlank, ParseCsvPointRow("", &lat, &lon, &ts, &has_ts));
  EXPECT_EQ(CsvRow::kBlank, ParseCsvPointRow("\r", &lat, &lon, &ts, &has_ts));
  EXPECT_EQ(CsvRow::kBlank,
            ParseCsvPointRow("   ", &lat, &lon, &ts, &has_ts));
  EXPECT_EQ(CsvRow::kMalformed,
            ParseCsvPointRow("lat,lon", &lat, &lon, &ts, &has_ts));
  EXPECT_EQ(CsvRow::kMalformedTimestamp,
            ParseCsvPointRow("1.5,2.5,zebra", &lat, &lon, &ts, &has_ts));
  EXPECT_EQ(CsvRow::kPoint,
            ParseCsvPointRow("1.5, 2.5\r", &lat, &lon, &ts, &has_ts));
  EXPECT_EQ(1.5, lat);
  EXPECT_EQ(2.5, lon);
  EXPECT_FALSE(has_ts);
  EXPECT_EQ(CsvRow::kPoint,
            ParseCsvPointRow("1.5,2.5,99.25\r", &lat, &lon, &ts, &has_ts));
  ASSERT_TRUE(has_ts);
  EXPECT_EQ(99.25, ts);
}

TEST(IoTest, FromStringParsersMatchFileReaders) {
  // The *FromString entry points are the byte-level primitives behind
  // the file readers (and the surface the fuzz harnesses drive); both
  // routes must produce the same trajectory.
  const std::string csv = "lat,lon,timestamp\n1.5,2.5,0.0\n1.6,2.6,1.0\n";
  StatusOr<Trajectory> from_string = ReadCsvFromString(csv);
  ASSERT_TRUE(from_string.ok()) << from_string.status();
  EXPECT_EQ(from_string.value().size(), 2);
  EXPECT_TRUE(from_string.value().has_timestamps());

  const std::string path = TempPath("from_string.csv");
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs(csv.c_str(), f);
    fclose(f);
  }
  StatusOr<Trajectory> from_file = ReadCsv(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  ASSERT_EQ(from_file.value().size(), from_string.value().size());
  for (Index i = 0; i < from_file.value().size(); ++i) {
    EXPECT_EQ(from_file.value()[i].lat(), from_string.value()[i].lat());
    EXPECT_EQ(from_file.value()[i].lon(), from_string.value()[i].lon());
  }
  std::remove(path.c_str());

  StatusOr<Trajectory> geojson = ReadGeoJsonFromString(
      "{\"coordinates\":[[2.5,1.5],[2.6,1.6]]}");
  ASSERT_TRUE(geojson.ok()) << geojson.status();
  EXPECT_EQ(geojson.value().size(), 2);

  StatusOr<Trajectory> plt = ReadPltFromString(
      "a\nb\nc\nd\ne\nf\n1.5,2.5,0,0,39448.5,1899-12-30,12:00:00\n");
  ASSERT_TRUE(plt.ok()) << plt.status();
  EXPECT_EQ(plt.value().size(), 1);
  EXPECT_TRUE(plt.value().has_timestamps());
}

TEST(IoTest, FromStringErrorsNameTheOrigin) {
  StatusOr<Trajectory> r = ReadCsvFromString("1.0,2.0\nnot,numbers\n",
                                             "wire-input");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("wire-input"), std::string::npos);
  // The default origin marks the bytes as non-file input.
  StatusOr<Trajectory> d = ReadCsvFromString("");
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.status().message().find("<memory>"), std::string::npos);
}

TEST(IoTest, ReadMissingFileIsIoError) {
  StatusOr<Trajectory> r = ReadCsv("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, ReadMalformedCsvIsInvalidArgument) {
  const std::string path = TempPath("bad.csv");
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("lat,lon\n1.0,2.0\nnot,numbers\n", f);
    fclose(f);
  }
  StatusOr<Trajectory> r = ReadCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, PltRoundTrip) {
  DatasetOptions options;
  options.length = 40;
  const Trajectory t =
      MakeDataset(DatasetKind::kTruckLike, options).value();
  const std::string path = TempPath("roundtrip.plt");
  ASSERT_TRUE(WritePlt(t, path).ok());
  const Trajectory back = ReadPlt(path).value();
  ASSERT_EQ(back.size(), t.size());
  for (Index i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(back[i].lat(), t[i].lat(), 1e-7);
    EXPECT_NEAR(back[i].lon(), t[i].lon(), 1e-7);
    EXPECT_NEAR(back.timestamp(i), t.timestamp(i), 0.5);
  }
  std::remove(path.c_str());
}

TEST(IoTest, PltRequiresTimestamps) {
  Trajectory t({LatLon(1, 2)});
  EXPECT_FALSE(WritePlt(t, TempPath("x.plt")).ok());
}

TEST(IoTest, GeoJsonRoundTripWithTimestamps) {
  DatasetOptions options;
  options.length = 60;
  const Trajectory t =
      MakeDataset(DatasetKind::kGeoLifeLike, options).value();
  const std::string path = TempPath("roundtrip.geojson");
  ASSERT_TRUE(WriteGeoJson(t, path).ok());
  const Trajectory back = ReadGeoJson(path).value();
  ASSERT_EQ(back.size(), t.size());
  ASSERT_TRUE(back.has_timestamps());
  for (Index i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(back[i].lat(), t[i].lat(), 1e-7);
    EXPECT_NEAR(back[i].lon(), t[i].lon(), 1e-7);
    EXPECT_NEAR(back.timestamp(i), t.timestamp(i), 1e-3);
  }
  std::remove(path.c_str());
}

TEST(IoTest, GeoJsonPreservesSubSecondEpochTimestamps) {
  // Regression: %g-style shortest rendering truncated GeoLife-era epoch
  // seconds (~3.4e9) to whole seconds, making sub-second trajectories
  // unreadable after a GeoJSON round-trip (non-ascending timestamps).
  Trajectory t({LatLon(39.9, 116.4), LatLon(39.91, 116.41),
                LatLon(39.92, 116.42)},
               {3400000000.1, 3400000000.6, 3400000001.2});
  const std::string path = TempPath("epoch.geojson");
  ASSERT_TRUE(WriteGeoJson(t, path).ok());
  const Trajectory back = ReadGeoJson(path).value();
  ASSERT_EQ(back.size(), 3);
  ASSERT_TRUE(back.has_timestamps());
  for (Index i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(back.timestamp(i), t.timestamp(i), 1e-3) << i;
  }
  std::remove(path.c_str());
}

TEST(IoTest, GeoJsonRoundTripWithoutTimestamps) {
  Trajectory t({LatLon(39.9, 116.4), LatLon(39.91, 116.41)});
  const std::string path = TempPath("plain.geojson");
  ASSERT_TRUE(WriteGeoJson(t, path).ok());
  const Trajectory back = ReadGeoJson(path).value();
  ASSERT_EQ(back.size(), 2);
  EXPECT_FALSE(back.has_timestamps());
  std::remove(path.c_str());
}

TEST(IoTest, GeoJsonReadsForeignLineString) {
  // A hand-written document (bare geometry, lon-first positions with an
  // altitude, arbitrary whitespace) — not something WriteGeoJson emits.
  const std::string path = TempPath("foreign.geojson");
  {
    std::ofstream out(path);
    out << "{ \"type\": \"LineString\",\n"
           "  \"coordinates\": [ [116.40, 39.90, 55.0],\n"
           "                     [116.41,39.91], [ 116.42 , 39.92 ] ] }";
  }
  const Trajectory back = ReadGeoJson(path).value();
  ASSERT_EQ(back.size(), 3);
  EXPECT_NEAR(back[0].lat(), 39.90, 1e-9);
  EXPECT_NEAR(back[0].lon(), 116.40, 1e-9);
  std::remove(path.c_str());
}

TEST(IoTest, GeoJsonWithoutCoordinatesIsInvalidArgument) {
  const std::string path = TempPath("nocoords.geojson");
  {
    std::ofstream out(path);
    out << "{\"type\": \"Feature\", \"properties\": {}}";
  }
  StatusOr<Trajectory> r = ReadGeoJson(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, GeoJsonRejectsMultiLineStringNesting) {
  const std::string path = TempPath("multi.geojson");
  {
    std::ofstream out(path);
    out << "{\"type\": \"MultiLineString\", \"coordinates\": "
           "[[[116.4, 39.9], [116.5, 39.8]]]}";
  }
  StatusOr<Trajectory> r = ReadGeoJson(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, GeoJsonMismatchedTimesIsInvalidArgument) {
  const std::string path = TempPath("badtimes.geojson");
  {
    std::ofstream out(path);
    out << "{\"properties\": {\"times\": [0.0]}, \"geometry\": "
           "{\"type\": \"LineString\", \"coordinates\": "
           "[[116.4, 39.9], [116.5, 39.8]]}}";
  }
  StatusOr<Trajectory> r = ReadGeoJson(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, GeoJsonReadMissingFileIsIoError) {
  StatusOr<Trajectory> r = ReadGeoJson("/nonexistent/missing.geojson");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace frechet_motif
