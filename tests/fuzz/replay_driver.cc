/// Standalone corpus-replay driver for the fuzz harnesses.
///
/// Under Clang the harnesses link against libFuzzer (-fsanitize=fuzzer),
/// which brings its own main(). Everywhere else — GCC builds, CI legs
/// without a fuzzing runtime — this file supplies the entry point: each
/// argument is a corpus file or a flat directory of them, every input is
/// fed through LLVMFuzzerTestOneInput once, and the run fails if no
/// input was found (an empty corpus means a wiring bug, not a clean
/// pass). This is what the `*_corpus` CTest cases execute, so the
/// harness code itself is compiled and exercised by every build, not
/// just the libFuzzer one.
///
/// libFuzzer flags (leading '-') are ignored so the same CTest command
/// line shape works in both modes.

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool IsDirectory(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// Files under `path` (one level; corpora are flat), or `path` itself.
std::vector<std::string> Collect(const std::string& path) {
  std::vector<std::string> files;
  if (!IsDirectory(path)) {
    files.push_back(path);
    return files;
  }
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return files;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string full = path + "/" + name;
    if (!IsDirectory(full)) files.push_back(full);
  }
  ::closedir(dir);
  std::sort(files.begin(), files.end());  // deterministic replay order
  return files;
}

bool RunOne(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  std::printf("ok %s (%zu bytes)\n", path.c_str(), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // libFuzzer flag compatibility
    for (const std::string& file : Collect(argv[i])) {
      if (!RunOne(file)) return 1;
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "replay: no corpus inputs found\n");
    return 1;
  }
  std::printf("replayed %d inputs\n", replayed);
  return 0;
}
