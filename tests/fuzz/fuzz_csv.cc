/// Fuzz harness for the CSV row parsers and whole-document reader:
/// ParseCsvPointRow, ParseFleetCsvRow (the serve tier's ingest dialect)
/// and ReadCsvFromString. These chew bytes straight off sockets and
/// user files, so the contract under arbitrary input is: classify or
/// return Status — never crash, throw, hang, or read out of bounds.

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/io.h"

namespace {

using frechet_motif::CsvRow;

/// kPoint must fully populate its outputs; trap if a path skipped one.
void CheckRow(CsvRow row, double lat, double lon, double ts, bool has_ts) {
  if (row != CsvRow::kPoint) return;
  // The parser wrote through every pointer; reading them back must be
  // defined behavior (MSan/UBSan would flag an uninitialized read).
  volatile double sink = lat + lon;
  if (has_ts) sink = sink + ts;
  (void)sink;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);

  // Line-level primitives, fed the same way the stream frontends do.
  std::size_t start = 0;
  while (start <= input.size()) {
    const std::size_t nl = input.find('\n', start);
    const std::string line =
        nl == std::string::npos ? input.substr(start)
                                : input.substr(start, nl - start);
    double lat = 0.0;
    double lon = 0.0;
    double ts = 0.0;
    bool has_ts = false;
    CheckRow(frechet_motif::ParseCsvPointRow(line, &lat, &lon, &ts, &has_ts),
             lat, lon, ts, has_ts);
    std::size_t stream = 0;
    CheckRow(frechet_motif::ParseFleetCsvRow(line, &stream, &lat, &lon, &ts,
                                             &has_ts),
             lat, lon, ts, has_ts);
    if (nl == std::string::npos) break;
    start = nl + 1;
  }

  // Whole-document reader: Status is the only acceptable failure mode.
  auto result = frechet_motif::ReadCsvFromString(input);
  if (result.ok() && result.value().size() <= 0) __builtin_trap();
  return 0;
}
