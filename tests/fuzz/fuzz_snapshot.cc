/// Fuzz harness for the durable decode stack, bottom to top:
///
///  1. BinaryReader primitives walked over the raw bytes (op codes
///     drawn from the input itself) — every Get* must fail with Status,
///     not read past the end or let a corrupt length prefix reach a
///     throwing resize(). The u64-length overflow in GetDoubleVector /
///     GetI32Vector (`Need(size * 8)` wrapping for size >= 2^61) was
///     found here; corpus/fuzz_snapshot/overflow-u64-len pins it, as
///     does BinaryCodec.VectorLengthOverflowIsDataLoss in
///     tests/durable_test.cc.
///
///  2. MotifFleetEngine::Restore on the bytes as a snapshot blob.
///
///  3. StateStore::Open over an in-memory FaultFs (tests/fault_fs.h)
///     whose snap/wal files are carved from the input — the full
///     recovery chain (magic, version, CRC, sequence numbers) on
///     arbitrary directory contents.
///
/// Contract everywhere: DataLoss/InvalidArgument Status, never a
/// crash, throw, or giant allocation.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "durable/state_store.h"
#include "fault_fs.h"
#include "geo/metric.h"
#include "stream/motif_fleet_engine.h"
#include "util/binary_codec.h"

namespace {

using frechet_motif::BinaryReader;
using frechet_motif::FleetOptions;
using frechet_motif::MotifFleetEngine;
using frechet_motif::StateStore;
using frechet_motif::Status;
using frechet_motif::testing_util::FaultFs;

/// The fixed engine shape the committed snapshot seed was generated
/// with (Restore checks the blob's echoed options against these).
FleetOptions SeedOptions() {
  FleetOptions options;
  options.stream.window_length = 8;
  options.stream.slide_step = 2;
  options.stream.min_length_xi = 2;
  return options;
}

void WalkPrimitives(std::string_view input) {
  BinaryReader reader(input);
  std::uint8_t op = 0;
  // GetU8 advances one byte per iteration whether or not the chosen
  // op succeeds, so the walk always terminates.
  while (reader.GetU8(&op).ok()) {
    std::uint8_t u8 = 0;
    std::uint32_t u32 = 0;
    std::uint64_t u64 = 0;
    std::int32_t i32 = 0;
    std::int64_t i64 = 0;
    bool b = false;
    double d = 0.0;
    char buf[16];
    std::string s;
    std::vector<double> dv;
    std::vector<std::int32_t> iv;
    Status status = Status::Ok();
    switch (op % 10) {
      case 0: status = reader.GetU8(&u8); break;
      case 1: status = reader.GetU32(&u32); break;
      case 2: status = reader.GetU64(&u64); break;
      case 3: status = reader.GetI32(&i32); break;
      case 4: status = reader.GetI64(&i64); break;
      case 5: status = reader.GetBool(&b); break;
      case 6: status = reader.GetDouble(&d); break;
      case 7: status = reader.GetBytes(buf, op % sizeof(buf)); break;
      case 8: status = reader.GetString(&s); break;
      case 9:
        status = reader.GetDoubleVector(&dv);
        if (status.ok()) status = reader.GetI32Vector(&iv);
        break;
    }
    (void)status;  // failure is the expected outcome on garbage
    if (reader.position() > input.size()) __builtin_trap();
  }
}

void TryEngineRestore(std::string_view input) {
  auto restored = MotifFleetEngine::Restore(SeedOptions(),
                                            frechet_motif::Euclidean(), input);
  if (restored.ok()) {
    // A blob that validates must yield a usable engine: snapshotting it
    // again exercises the save path over fuzz-derived state.
    std::string again;
    if (!restored.value().Snapshot(&again).ok()) __builtin_trap();
  }
}

void TryStoreRecovery(std::string_view input) {
  FaultFs fs(/*seed=*/1);  // no faults armed; deterministic
  if (!fs.CreateDir("state").ok()) __builtin_trap();
  // Carve the input into a snapshot and a journal for generation 1:
  // the first byte picks the split point, so the fuzzer controls both
  // file shapes and their boundary.
  std::string_view rest = input;
  std::size_t split = 0;
  if (!rest.empty()) {
    split = static_cast<std::uint8_t>(rest[0]) % (rest.size());
    rest.remove_prefix(1);
    if (split > rest.size()) split = rest.size();
  }
  if (!fs.WriteFile("state/snap-000001", rest.substr(0, split)).ok() ||
      !fs.WriteFile("state/wal-000001", rest.substr(split)).ok()) {
    __builtin_trap();
  }
  auto store = StateStore::Open(&fs, "state");
  if (store.ok()) {
    // Whatever recovery accepted, the store must be writable after one
    // Checkpoint (the documented re-arm step).
    if (!store.value().Checkpoint("post-fuzz").ok()) __builtin_trap();
    if (!store.value().AppendRecord("r").ok()) __builtin_trap();
    if (!store.value().SyncJournal().ok()) __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  WalkPrimitives(input);
  TryEngineRestore(input);
  TryStoreRecovery(input);
  return 0;
}
