/// Fuzz harness for the GeoJSON LineString reader
/// (ReadGeoJsonFromString): hand-rolled scanning over untrusted text,
/// so the interesting bugs are offset arithmetic past the end of the
/// document and unterminated-array loops. Contract: Status or a
/// non-empty trajectory, never a crash or hang.

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  auto result = frechet_motif::ReadGeoJsonFromString(input);
  // The parser rejects empty coordinate lists, so success implies at
  // least one point, with timestamps either absent or one per point.
  if (result.ok()) {
    const frechet_motif::Trajectory& t = result.value();
    if (t.size() <= 0) __builtin_trap();
    for (frechet_motif::Index i = 0; i < t.size(); ++i) {
      volatile double sink = t[i].lat() + t[i].lon();
      if (t.has_timestamps()) sink = sink + t.timestamp(i);
      (void)sink;
    }
  }
  return 0;
}
