/// Fuzz harness for the serve tier's line protocol: the fuzz input is
/// the raw byte stream a TCP peer sends, delivered through the
/// FaultConn in-memory socket (tests/fault_socket.h) in deliberately
/// torn chunks so the line reassembly buffer is exercised at every
/// split point. This drives MotifServer's private HandleLine through
/// the same OnReadable path production uses.
///
/// Contract under arbitrary peer bytes: the server answers with error
/// frames, evicts, or closes — it never crashes, never wedges (every
/// pump loop below is bounded), and Shutdown still succeeds.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fault_socket.h"
#include "geo/metric.h"
#include "serve/motif_server.h"

namespace {

using frechet_motif::MotifServer;
using frechet_motif::ServeOptions;
using frechet_motif::testing_util::FaultConn;

/// Small windows so motifs (and their report frames) appear within a
/// few ingested rows; tight limits so the oversized/pending-overflow
/// eviction paths are reachable from short fuzz inputs.
ServeOptions SmallOptions() {
  ServeOptions options;
  options.fleet.stream.window_length = 8;
  options.fleet.stream.slide_step = 2;
  options.fleet.stream.min_length_xi = 2;
  options.limits.max_connections = 2;
  options.limits.max_line_bytes = 96;
  options.limits.max_ingest_pending_bytes = 512;
  options.limits.subscriber_queue_bytes = 1024;
  options.limits.subscriber_queue_high_water_bytes = 2048;
  return options;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Bound per-input work: beyond a few KiB the harness only re-proves
  // the same loops and the fuzzer's throughput collapses.
  if (size > 4096) size = 4096;
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  auto server_or = MotifServer::Create(SmallOptions(),
                                       frechet_motif::Euclidean());
  if (!server_or.ok()) __builtin_trap();  // in-memory Create cannot fail
  MotifServer server = std::move(server_or).value();

  FaultConn conn;
  std::int64_t now = 0;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), now);

  // Derive tear points from the input itself (no RNG: reproducibility
  // is the corpus file). Each chunk is 1..16 bytes, sized by the first
  // byte of the previous chunk.
  std::size_t at = 0;
  while (at < input.size() && server.Connected(id)) {
    const std::size_t chunk =
        1 + static_cast<std::size_t>(
                static_cast<std::uint8_t>(input[at]) % 16);
    conn.Feed(input.substr(at, chunk));
    at += chunk;
    server.OnReadable(id, ++now);
    // Bounded pump: stalling forever here would be a server bug.
    int guard = 0;
    while (server.Connected(id) && conn.unread() > 0 && ++guard < 64) {
      server.OnReadable(id, ++now);
    }
    if (guard >= 64) __builtin_trap();
    server.OnWritable(id, now);
    server.Tick(now);
    conn.TakeOutput();  // keep the in-memory outbound buffer small
  }

  // Half-close, then drain and shut down — the teardown paths must be
  // reachable from any protocol state the input left behind.
  conn.FeedEof();
  if (server.Connected(id)) server.OnReadable(id, ++now);
  server.BeginDrain(++now);
  int guard = 0;
  while (!server.DrainComplete() && ++guard < 128) {
    server.Tick(now += 100);
    if (server.Connected(id)) server.OnWritable(id, now);
  }
  if (guard >= 128) __builtin_trap();
  if (!server.Shutdown().ok()) __builtin_trap();
  return 0;
}
