/// Fuzz harness for the GeoLife PLT reader (ReadPltFromString): a
/// line-oriented format with a fixed 6-line preamble and a fractional
/// "days" timestamp column. Contract: Status or a non-empty timestamped
/// trajectory, never a crash or hang.

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  auto result = frechet_motif::ReadPltFromString(input);
  if (result.ok()) {
    const frechet_motif::Trajectory& t = result.value();
    // Every accepted PLT row carries a timestamp.
    if (t.size() <= 0 || !t.has_timestamps()) __builtin_trap();
  }
  return 0;
}
