#include "cluster/subtrajectory_cluster.h"

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/generator.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "similarity/frechet.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

/// A trajectory that repeats one leg `repeats` times (with small noise)
/// separated by far-away excursions — a ground-truth cluster.
Trajectory RepeatedLegTrace(int repeats, Index leg_points, double noise_m,
                            std::uint64_t seed) {
  Rng rng(seed);
  const Point origin = LatLon(40.0, 116.0);
  Trajectory t;
  double clock = 0.0;
  for (int r = 0; r < repeats; ++r) {
    // The repeated leg: straight 10 m/sample east at y=0.
    for (Index k = 0; k < leg_points; ++k) {
      t.Append(OffsetByMeters(origin, 10.0 * k + rng.NextGaussian(0, noise_m),
                              rng.NextGaussian(0, noise_m)),
               clock);
      clock += 1.0;
    }
    // Excursion: far away so it cannot match the leg.
    for (Index k = 0; k < leg_points; ++k) {
      t.Append(OffsetByMeters(origin, 10.0 * k, 5000.0 + 200.0 * r +
                                                    rng.NextGaussian(0, noise_m)),
               clock);
      clock += 1.0;
    }
  }
  return t;
}

ClusterOptions SmallOptions(Index window, Index stride, double theta) {
  ClusterOptions o;
  o.window_length = window;
  o.stride = stride;
  o.threshold_m = theta;
  return o;
}

TEST(ClusterTest, RejectsBadOptions) {
  const Trajectory t = RepeatedLegTrace(2, 40, 1.0, 1);
  EXPECT_FALSE(
      BestSubtrajectoryCluster(t, Haversine(), SmallOptions(1, 5, 50)).ok());
  EXPECT_FALSE(
      BestSubtrajectoryCluster(t, Haversine(), SmallOptions(40, 0, 50)).ok());
  ClusterOptions negative = SmallOptions(40, 5, -1.0);
  EXPECT_FALSE(BestSubtrajectoryCluster(t, Haversine(), negative).ok());
  ClusterOptions single = SmallOptions(40, 5, 50);
  single.min_members = 1;
  EXPECT_FALSE(BestSubtrajectoryCluster(t, Haversine(), single).ok());
}

TEST(ClusterTest, FindsThePlantedRepeats) {
  const int repeats = 4;
  const Index leg = 40;
  const Trajectory t = RepeatedLegTrace(repeats, leg, 1.5, 7);
  const StatusOr<SubtrajectoryCluster> cluster = BestSubtrajectoryCluster(
      t, Haversine(), SmallOptions(leg, leg / 4, 25.0));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  // All four repetitions of the leg should be recovered.
  EXPECT_GE(cluster.value().size(), repeats);
}

TEST(ClusterTest, MembersAreWithinThresholdOfReference) {
  const Trajectory t = RepeatedLegTrace(3, 40, 2.0, 9);
  const ClusterOptions options = SmallOptions(40, 10, 30.0);
  const StatusOr<SubtrajectoryCluster> cluster =
      BestSubtrajectoryCluster(t, Haversine(), options);
  ASSERT_TRUE(cluster.ok());
  const SubtrajectoryRef ref = cluster.value().reference;
  const Trajectory ref_window = t.Slice(ref.first, ref.last);
  for (const SubtrajectoryRef& member : cluster.value().members) {
    const Trajectory window = t.Slice(member.first, member.last);
    const double dfd =
        DiscreteFrechet(ref_window, window, Haversine()).value();
    EXPECT_LE(dfd, options.threshold_m + 1e-9)
        << "member [" << member.first << "," << member.last << "]";
  }
}

TEST(ClusterTest, MembersDoNotOverlap) {
  const Trajectory t = RepeatedLegTrace(4, 32, 1.0, 11);
  const StatusOr<SubtrajectoryCluster> cluster = BestSubtrajectoryCluster(
      t, Haversine(), SmallOptions(32, 8, 20.0));
  ASSERT_TRUE(cluster.ok());
  const auto& members = cluster.value().members;
  for (std::size_t a = 0; a + 1 < members.size(); ++a) {
    EXPECT_LT(members[a].last, members[a + 1].first);
  }
}

TEST(ClusterTest, NotFoundWhenNothingRepeats) {
  // A single diagonal line: windows drift apart monotonically, so with a
  // tiny threshold nothing clusters.
  Trajectory t;
  const Point origin = LatLon(40.0, 116.0);
  for (Index k = 0; k < 200; ++k) {
    t.Append(OffsetByMeters(origin, 25.0 * k, 25.0 * k),
             static_cast<double>(k));
  }
  const StatusOr<SubtrajectoryCluster> cluster = BestSubtrajectoryCluster(
      t, Haversine(), SmallOptions(40, 10, 5.0));
  EXPECT_FALSE(cluster.ok());
  EXPECT_EQ(cluster.status().code(), StatusCode::kNotFound);
}

TEST(ClusterTest, GreedyCoverProducesDisjointClusters) {
  DatasetOptions d;
  d.length = 800;
  d.seed = 5;
  const Trajectory t = MakeDataset(DatasetKind::kTruckLike, d).value();
  ClusterOptions options = SmallOptions(60, 20, 400.0);
  ClusterStats stats;
  const StatusOr<std::vector<SubtrajectoryCluster>> clusters =
      ClusterSubtrajectories(t, Haversine(), options, &stats);
  ASSERT_TRUE(clusters.ok());
  // Pairwise disjoint across clusters.
  std::vector<SubtrajectoryRef> all;
  for (const SubtrajectoryCluster& c : clusters.value()) {
    EXPECT_GE(c.size(), options.min_members);
    for (const SubtrajectoryRef& m : c.members) all.push_back(m);
  }
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = a + 1; b < all.size(); ++b) {
      const bool overlap =
          all[a].first <= all[b].last && all[b].first <= all[a].last;
      EXPECT_FALSE(overlap) << "windows " << a << " and " << b;
    }
  }
  EXPECT_GT(stats.window_pairs, 0);
  EXPECT_EQ(stats.window_pairs,
            stats.pruned_endpoints + stats.decided_exact);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(ClusterTest, StatsPruningWorksOnSpreadOutData) {
  const Trajectory t = RepeatedLegTrace(3, 40, 1.0, 13);
  ClusterStats stats;
  ASSERT_TRUE(BestSubtrajectoryCluster(t, Haversine(),
                                       SmallOptions(40, 10, 20.0), &stats)
                  .ok());
  // The far-away excursions must mostly die at the endpoint bound.
  EXPECT_GT(stats.pruned_endpoints, stats.decided_exact);
}

}  // namespace
}  // namespace frechet_motif
