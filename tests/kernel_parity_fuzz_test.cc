/// Kernel-parity fuzz tier: the explicit-SIMD DFD kernels
/// (src/similarity/frechet.cc) must return **bit-identical** doubles to
/// the scalar kernel on every input — exact distances below the threshold,
/// and the *same* lower bound when the threshold early-exit fires. The
/// reassociation argument (min/max-only, NaN-free inputs) is in
/// docs/PERFORMANCE.md; this tier is the empirical enforcement across
/// random matrices, adversarial shapes, thresholds, and every SIMD level
/// the running build + CPU can execute. Seeded via FMOTIF_FUZZ_SEED,
/// rounds via FMOTIF_FUZZ_ROUNDS (see test_util.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "motif/motif.h"
#include "similarity/euclidean.h"
#include "similarity/frechet.h"
#include "test_util.h"
#include "util/random.h"
#include "util/simd.h"

namespace frechet_motif {
namespace {

using testing_util::FuzzRounds;
using testing_util::FuzzSeed;
using testing_util::MakePlanarWalk;
using testing_util::MakeRandomCrossMatrix;
using testing_util::MakeRandomSelfMatrix;

/// Every level the running build and CPU can execute, scalar first. With
/// FRECHET_MOTIF_SIMD=OFF (or FMOTIF_SIMD=scalar) this is just {scalar} —
/// the parity assertions then degenerate to determinism checks, which is
/// exactly what the scalar-only CI leg wants.
std::vector<SimdLevel> AvailableLevels() {
  ClearSimdLevelCap();
  const SimdLevel widest = ActiveSimdLevel();
  std::vector<SimdLevel> levels;
  for (int l = 0; l <= static_cast<int>(widest); ++l) {
    levels.push_back(static_cast<SimdLevel>(l));
  }
  return levels;
}

/// Pins a SIMD level for one computation; the destructor clears the cap
/// even when an ASSERT unwinds mid-test.
class ScopedSimdCap {
 public:
  explicit ScopedSimdCap(SimdLevel level) { SetSimdLevelCap(level); }
  ~ScopedSimdCap() { ClearSimdLevelCap(); }
  ScopedSimdCap(const ScopedSimdCap&) = delete;
  ScopedSimdCap& operator=(const ScopedSimdCap&) = delete;
};

double RangeDfdAtLevel(const DistanceMatrix& m, Index i, Index ie, Index j,
                       Index je, double threshold, SimdLevel level) {
  ScopedSimdCap cap(level);
  FrechetScratch scratch;
  return DiscreteFrechetOnRange(m, i, ie, j, je, threshold, &scratch).value();
}

/// Asserts the full parity + threshold-contract bundle for one range:
///  * every SIMD level returns the scalar kernel's bits, per threshold;
///  * the generic (virtual-dispatch) kernel agrees too — it shares the
///    early-exit schedule, so even above-threshold lower bounds match;
///  * a value <= threshold is the exact DFD, a value above it is a lower
///    bound that itself exceeds the threshold (the documented contract).
void CheckRange(const DistanceMatrix& m, Index i, Index ie, Index j, Index je,
                const std::vector<SimdLevel>& levels) {
  const double exact =
      RangeDfdAtLevel(m, i, ie, j, je, kNoFrechetThreshold, SimdLevel::kScalar);
  const double thresholds[] = {kNoFrechetThreshold,
                               0.0,
                               0.5 * exact,
                               exact,
                               std::nextafter(exact, 0.0),
                               1.0000001 * exact + 1e-9};
  for (const double threshold : thresholds) {
    FrechetScratch scratch;
    const double scalar =
        RangeDfdAtLevel(m, i, ie, j, je, threshold, SimdLevel::kScalar);
    const double generic =
        DiscreteFrechetOnRangeGeneric(m, i, ie, j, je, threshold, &scratch)
            .value();
    ASSERT_EQ(scalar, generic)
        << "generic/matrix divergence at range (" << i << ".." << ie << ", "
        << j << ".." << je << ") threshold " << threshold;
    for (const SimdLevel level : levels) {
      const double got = RangeDfdAtLevel(m, i, ie, j, je, threshold, level);
      ASSERT_EQ(scalar, got)
          << "SIMD level " << SimdLevelName(level) << " diverges at range ("
          << i << ".." << ie << ", " << j << ".." << je << ") threshold "
          << threshold;
    }
    // Threshold contract, against the scalar exact value.
    if (scalar <= threshold) {
      ASSERT_EQ(exact, scalar);
    } else {
      ASSERT_LE(scalar, exact);
      ASSERT_GT(scalar, threshold);
    }
  }
}

TEST(KernelParityFuzz, RandomRangesBitIdenticalAcrossLevels) {
  const std::vector<SimdLevel> levels = AvailableLevels();
  const std::uint64_t seed = FuzzSeed(20260808);
  const int rounds = FuzzRounds(8);
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    const Index n = static_cast<Index>(rng.NextInt(2, 300));
    const DistanceMatrix m = MakeRandomSelfMatrix(n, rng.NextUint64());
    // Full range plus random subranges (degenerate ones included: the
    // NextInt bounds allow single-row and single-column ranges).
    CheckRange(m, 0, n - 1, 0, n - 1, levels);
    for (int r = 0; r < 6; ++r) {
      const Index i = static_cast<Index>(rng.NextInt(0, n - 1));
      const Index ie = static_cast<Index>(rng.NextInt(i, n - 1));
      const Index j = static_cast<Index>(rng.NextInt(0, n - 1));
      const Index je = static_cast<Index>(rng.NextInt(j, n - 1));
      CheckRange(m, i, ie, j, je, levels);
    }
  }
}

TEST(KernelParityFuzz, RectangularMatricesAgree) {
  const std::vector<SimdLevel> levels = AvailableLevels();
  const std::uint64_t seed = FuzzSeed(977);
  const int rounds = FuzzRounds(6);
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    const Index n = static_cast<Index>(rng.NextInt(2, 160));
    const Index mm = static_cast<Index>(rng.NextInt(2, 160));
    const DistanceMatrix m = MakeRandomCrossMatrix(n, mm, rng.NextUint64());
    CheckRange(m, 0, n - 1, 0, mm - 1, levels);
  }
}

TEST(KernelParityFuzz, BoundaryLengthsExhaustive) {
  // Every length around the vector widths (2/4/8 lanes) and the
  // checkpoint-stride doublings: the tail handling and the dense-to-
  // sparse schedule transition live exactly here.
  const std::vector<SimdLevel> levels = AvailableLevels();
  const std::uint64_t seed = FuzzSeed(4242);
  std::vector<Index> lengths;
  for (Index n = 2; n <= 34; ++n) lengths.push_back(n);
  for (const Index n : {63, 64, 65, 127, 128, 129, 255, 256, 257, 300}) {
    lengths.push_back(static_cast<Index>(n));
  }
  Rng rng(seed);
  for (const Index n : lengths) {
    const DistanceMatrix m = MakeRandomSelfMatrix(n, rng.NextUint64());
    CheckRange(m, 0, n - 1, 0, n - 1, levels);
  }
}

TEST(KernelParityFuzz, DegenerateAndAdversarialShapes) {
  const std::vector<SimdLevel> levels = AvailableLevels();

  // Single cell.
  CheckRange(DistanceMatrix::FromValues(1, 1, {3.5}).value(), 0, 0, 0, 0,
             levels);

  // Single row / single column ranges of a larger matrix.
  const DistanceMatrix m = MakeRandomSelfMatrix(40, FuzzSeed(7));
  CheckRange(m, 5, 5, 0, 39, levels);
  CheckRange(m, 0, 39, 7, 7, levels);
  CheckRange(m, 11, 11, 23, 23, levels);

  // All-equal cells: every min/max tie at once.
  std::vector<double> flat(static_cast<std::size_t>(20) * 20, 2.25);
  CheckRange(DistanceMatrix::FromValues(20, 20, std::move(flat)).value(), 0,
             19, 0, 19, levels);

  // Extreme magnitudes (still finite and NaN-free, per the kernel
  // contract): denormal-adjacent tiny values and near-overflow huge ones.
  CheckRange(MakeRandomSelfMatrix(30, 11, /*scale=*/1e-300), 0, 29, 0, 29,
             levels);
  CheckRange(MakeRandomSelfMatrix(30, 13, /*scale=*/1e300), 0, 29, 0, 29,
             levels);

  // Zero matrix: the exact DFD is 0, so every threshold is immediately
  // reached and the first-row/corner paths dominate.
  std::vector<double> zeros(static_cast<std::size_t>(12) * 12, 0.0);
  CheckRange(DistanceMatrix::FromValues(12, 12, std::move(zeros)).value(), 0,
             11, 0, 11, levels);
}

TEST(KernelParityFuzz, MotifArgminInvariantAcrossLevelsAndThreads) {
  // End-to-end argmin check: the motif search's winning candidate — not
  // just its distance — must be independent of the dispatched kernel and
  // of the thread count. Distances are bit-identical across levels, so
  // any candidate difference would be a dispatch bug.
  const std::vector<SimdLevel> levels = AvailableLevels();
  const Trajectory walk = MakePlanarWalk(150, FuzzSeed(31337));
  FindMotifOptions options;
  options.algorithm = MotifAlgorithm::kBtm;
  options.min_length_xi = 12;

  MotifResult reference;
  {
    ScopedSimdCap cap(SimdLevel::kScalar);
    reference = FindMotif(walk, Euclidean(), options).value();
  }
  ASSERT_TRUE(reference.found);
  for (const SimdLevel level : levels) {
    for (const int threads : {1, 4}) {
      ScopedSimdCap cap(level);
      options.threads = threads;
      const MotifResult got = FindMotif(walk, Euclidean(), options).value();
      ASSERT_TRUE(got.found);
      EXPECT_EQ(reference.best, got.best)
          << "level " << SimdLevelName(level) << " threads " << threads;
      EXPECT_EQ(reference.distance, got.distance)
          << "level " << SimdLevelName(level) << " threads " << threads;
    }
  }
}

TEST(KernelParityFuzz, ActiveLevelRespectsCapsAndNeverExceedsCompiled) {
  ClearSimdLevelCap();
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(CompiledSimdLevel()));
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectedSimdLevel()));
  SetSimdLevelCap(SimdLevel::kScalar);
  EXPECT_EQ(SimdLevel::kScalar, ActiveSimdLevel());
  ClearSimdLevelCap();
  SimdLevel parsed = SimdLevel::kScalar;
  EXPECT_TRUE(ParseSimdLevel("avx2", &parsed));
  EXPECT_EQ(SimdLevel::kAvx2, parsed);
  EXPECT_FALSE(ParseSimdLevel("mmx", &parsed));
  EXPECT_STREQ("avx512", SimdLevelName(SimdLevel::kAvx512));
}

}  // namespace
}  // namespace frechet_motif
