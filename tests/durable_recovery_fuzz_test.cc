// Randomized crash-recovery parity for the durable fleet. Every round
// builds a fault-free oracle (a plain MotifFleetEngine, or a never-
// killed DurableFleet) and a fault run on a FaultFs, injects crashes —
// op-level tears inside the commit protocol, hard kills between calls,
// bit flips on stable snapshots, unsynced journal tails — recovers, and
// requires the recovered engine to end **byte-identical** to the
// oracle's `Snapshot()`, join matches included.
//
// The resume rule after a crash is the one a real writer would use: the
// recovered per-stream `ingest_stats().released` counts say how far the
// committed global prefix got, and the feed re-pushes everything after
// it. Committed records always form a prefix of the call sequence (the
// tolerant tail parse stops at the first torn frame), so counts are
// enough to realign an interleaved schedule.
//
// Failures print the fuzz seed; rerun with FMOTIF_FUZZ_SEED=<seed>.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "durable/durable_fleet.h"
#include "fault_fs.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "stream/motif_fleet_engine.h"
#include "test_util.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

struct FuzzConfig {
  FleetOptions options;
  std::size_t streams = 0;
  Index points = 0;  // per stream
};

FuzzConfig DrawConfig(Rng* rng, Index reorder_capacity) {
  FuzzConfig config;
  const Index xi = static_cast<Index>(rng->NextInt(6, 8));
  config.options.stream.min_length_xi = xi;
  config.options.stream.window_length =
      static_cast<Index>(rng->NextInt(2 * xi + 4, 2 * xi + 14));
  config.options.stream.slide_step = static_cast<Index>(
      rng->NextInt(1, std::max<Index>(1, config.options.stream.window_length / 3)));
  config.options.reorder_capacity = reorder_capacity;
  // Join on in about half the rounds, radius wide enough to flip pairs.
  config.options.join_epsilon = rng->NextInt(0, 1) == 0 ? 250.0 : -1.0;
  config.streams = static_cast<std::size_t>(rng->NextInt(1, 3));
  config.points = config.options.stream.window_length +
                  static_cast<Index>(rng->NextInt(30, 60));
  return config;
}

// A shuffled multiset of stream ids: each stream appears `points` times.
std::vector<std::size_t> DrawSchedule(Rng* rng, const FuzzConfig& config) {
  std::vector<std::size_t> schedule;
  for (std::size_t s = 0; s < config.streams; ++s) {
    for (Index k = 0; k < config.points; ++k) schedule.push_back(s);
  }
  for (std::size_t k = schedule.size(); k > 1; --k) {
    std::swap(schedule[k - 1],
              schedule[static_cast<std::size_t>(rng->NextInt(0, k - 1))]);
  }
  return schedule;
}

std::vector<Trajectory> DrawData(const FuzzConfig& config,
                                 std::uint64_t data_seed) {
  std::vector<Trajectory> data;
  for (std::size_t s = 0; s < config.streams; ++s) {
    data.push_back(testing_util::MakePlanarWalk(config.points, data_seed + s));
  }
  return data;
}

// The master parity check: the whole engine state — ring matrices,
// bounds, scheduler, join cache, counters — serialized and compared as
// bytes, plus the join's current matches for a semantic cross-check.
void ExpectSameEngineState(const MotifFleetEngine& expected,
                           const MotifFleetEngine& actual) {
  std::string want;
  std::string got;
  ASSERT_TRUE(expected.Snapshot(&want).ok());
  ASSERT_TRUE(actual.Snapshot(&got).ok());
  EXPECT_TRUE(want == got)
      << "engine snapshots diverge (" << want.size() << " vs " << got.size()
      << " bytes)";
  EXPECT_EQ(expected.CurrentJoinMatches(), actual.CurrentJoinMatches());
}

// Round family A: crashes injected at the filesystem-operation level,
// landing inside append/sync/rename windows of the commit protocol —
// including during Open's recovery checkpoint and during rotation.
TEST(DurableRecoveryFuzz, OpLevelCrashesRecoverBitExact) {
  const std::uint64_t seed = testing_util::FuzzSeed(20260801);
  const int rounds = testing_util::FuzzRounds(4);
  Rng rng(seed);
  const EuclideanMetric metric;
  for (int round = 0; round < rounds; ++round) {
    const FuzzConfig config = DrawConfig(&rng, /*reorder_capacity=*/0);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " round " << round
                 << ": W=" << config.options.stream.window_length
                 << " slide=" << config.options.stream.slide_step
                 << " streams=" << config.streams << " n=" << config.points
                 << " eps=" << config.options.join_epsilon);
    const std::vector<std::size_t> schedule = DrawSchedule(&rng, config);
    const std::vector<Trajectory> data =
        DrawData(config, seed + 1000 + 10 * static_cast<std::uint64_t>(round));

    auto oracle = MotifFleetEngine::Create(config.options, metric);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    std::vector<std::size_t> cursor(config.streams, 0);
    for (std::size_t s = 0; s < config.streams; ++s) {
      ASSERT_EQ(s, oracle.value().AddStream().value());
    }
    for (const std::size_t s : schedule) {
      ASSERT_TRUE(oracle.value().Push(s, data[s][static_cast<Index>(cursor[s]++)]).ok());
    }

    testing_util::FaultFs fs(seed + 77 * static_cast<std::uint64_t>(round));
    DurableOptions durable;
    durable.state_dir = "state";
    durable.fs = &fs;
    durable.checkpoint_interval_records =
        static_cast<std::uint64_t>(rng.NextInt(5, 20));
    int crashes = 0;
    for (int attempt = 0;; ++attempt) {
      ASSERT_LT(attempt, 500) << "crash loop did not converge";
      auto fleet = DurableFleet::Open(config.options, metric, durable);
      if (!fleet.ok()) {
        ASSERT_TRUE(fs.crashed()) << fleet.status();
        fs.Restart();
        ++crashes;
        continue;
      }
      while (fleet.value().stream_count() < config.streams &&
             fleet.value().AddStream().ok()) {
      }
      if (fs.crashed()) {
        fs.Restart();
        ++crashes;
        continue;
      }
      ASSERT_EQ(config.streams, fleet.value().stream_count());

      // Resume where the committed prefix ended.
      for (std::size_t s = 0; s < config.streams; ++s) {
        cursor[s] = static_cast<std::size_t>(
            fleet.value().engine().ingest_stats(s).released);
      }
      std::vector<std::size_t> seen(config.streams, 0);
      bool armed = false;
      int pushed = 0;
      for (const std::size_t s : schedule) {
        const std::size_t index = seen[s]++;
        if (index < cursor[s]) continue;
        // Arm at most one crash per attempt, and only once this attempt
        // has committed something — guarantees forward progress.
        if (!armed && pushed > 0 && rng.NextInt(0, 7) == 0) {
          fs.CrashAfter(rng.NextInt(1, 25));
          armed = true;
        }
        auto push = fleet.value().Push(s, data[s][static_cast<Index>(index)]);
        if (!push.ok()) {
          ASSERT_TRUE(fs.crashed()) << push.status();
          break;
        }
        ++pushed;
        if (rng.NextInt(0, 19) == 0) {
          const Status rotated = fleet.value().Checkpoint();
          if (!rotated.ok()) {
            ASSERT_TRUE(fs.crashed()) << rotated;
            break;
          }
        }
      }
      if (fs.crashed()) {
        fs.Restart();
        ++crashes;
        continue;
      }
      ExpectSameEngineState(oracle.value(), fleet.value().engine());
      break;
    }
    // A fault-injection fuzz that never crashes tests nothing; with a
    // crash armed on ~1/8 of pushes this is deterministic given the seed.
    EXPECT_GT(crashes, 0);
  }
}

// Round family B: out-of-order timestamped feeds through the reorder
// buffers, hard kills between calls at segment boundaries. Each segment
// ends in Flush, so the buffered points (deliberately volatile) are
// empty at every kill and the oracle — a never-killed DurableFleet fed
// identically — must match after every recovery.
TEST(DurableRecoveryFuzz, ReorderedSegmentsSurviveKillsBetweenCalls) {
  const std::uint64_t seed = testing_util::FuzzSeed(20260802);
  const int rounds = testing_util::FuzzRounds(3);
  Rng rng(seed);
  const EuclideanMetric metric;
  for (int round = 0; round < rounds; ++round) {
    const Index capacity = static_cast<Index>(rng.NextInt(2, 5));
    const FuzzConfig config = DrawConfig(&rng, capacity);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " round " << round
                 << ": W=" << config.options.stream.window_length
                 << " capacity=" << capacity << " streams=" << config.streams
                 << " n=" << config.points
                 << " eps=" << config.options.join_epsilon);
    const std::vector<std::size_t> schedule = DrawSchedule(&rng, config);
    const std::vector<Trajectory> data =
        DrawData(config, seed + 2000 + 10 * static_cast<std::uint64_t>(round));

    // Per-stream timestamps: mostly increasing with bounded disorder
    // from random adjacent swaps (occasionally beyond the buffer bound,
    // so deterministic late-drops happen too).
    std::vector<std::vector<double>> stamps(config.streams);
    for (std::size_t s = 0; s < config.streams; ++s) {
      for (Index k = 0; k < config.points; ++k) {
        stamps[s].push_back(static_cast<double>(k));
      }
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t k = 0; k + 1 < stamps[s].size(); ++k) {
          if (rng.NextInt(0, 2) == 0) std::swap(stamps[s][k], stamps[s][k + 1]);
        }
      }
    }

    testing_util::FaultFs oracle_fs(seed + 3 * static_cast<std::uint64_t>(round));
    DurableOptions oracle_durable;
    oracle_durable.state_dir = "oracle";
    oracle_durable.fs = &oracle_fs;
    auto oracle = DurableFleet::Open(config.options, metric, oracle_durable);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    for (std::size_t s = 0; s < config.streams; ++s) {
      ASSERT_EQ(s, oracle.value().AddStream().value());
    }

    testing_util::FaultFs fs(seed + 5 * static_cast<std::uint64_t>(round));
    DurableOptions durable;
    durable.state_dir = "state";
    durable.fs = &fs;
    durable.checkpoint_interval_records =
        static_cast<std::uint64_t>(rng.NextInt(8, 32));

    const int segments = static_cast<int>(rng.NextInt(3, 5));
    std::vector<std::size_t> seen(config.streams, 0);
    std::size_t fed = 0;
    for (int segment = 0; segment < segments; ++segment) {
      if (segment > 0) fs.Restart();  // hard kill between calls
      auto fleet = DurableFleet::Open(config.options, metric, durable);
      ASSERT_TRUE(fleet.ok()) << fleet.status();
      if (segment == 0) {
        for (std::size_t s = 0; s < config.streams; ++s) {
          ASSERT_EQ(s, fleet.value().AddStream().value());
        }
      }
      ASSERT_EQ(config.streams, fleet.value().stream_count());
      const std::size_t until = segment + 1 == segments
                                    ? schedule.size()
                                    : schedule.size() * (segment + 1) / segments;
      for (; fed < until; ++fed) {
        const std::size_t s = schedule[fed];
        const std::size_t index = seen[s]++;
        const Point& p = data[s][static_cast<Index>(index)];
        const double ts = stamps[s][index];
        auto live = fleet.value().Push(s, p, ts);
        auto want = oracle.value().Push(s, p, ts);
        ASSERT_TRUE(live.ok()) << live.status();
        ASSERT_TRUE(want.ok()) << want.status();
        ASSERT_EQ(want.value().updates.size(), live.value().updates.size());
      }
      ASSERT_TRUE(fleet.value().Flush().ok());
      ASSERT_TRUE(oracle.value().Flush().ok());
      ExpectSameEngineState(oracle.value().engine(), fleet.value().engine());
    }
  }
}

// Round family C: a bit flipped in the newest snapshot on stable
// storage. Recovery must fall back one generation and rebuild the same
// state from the older snapshot plus the full journal chain — never
// silently restart empty (that is a separate DataLoss test in
// durable_test.cc when no generation validates).
TEST(DurableRecoveryFuzz, CorruptSnapshotFallsBackAGeneration) {
  const std::uint64_t seed = testing_util::FuzzSeed(20260803);
  const int rounds = testing_util::FuzzRounds(3);
  Rng rng(seed);
  const EuclideanMetric metric;
  for (int round = 0; round < rounds; ++round) {
    const FuzzConfig config = DrawConfig(&rng, /*reorder_capacity=*/0);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " round " << round
                 << ": W=" << config.options.stream.window_length
                 << " streams=" << config.streams << " n=" << config.points
                 << " eps=" << config.options.join_epsilon);
    const std::vector<std::size_t> schedule = DrawSchedule(&rng, config);
    const std::vector<Trajectory> data =
        DrawData(config, seed + 4000 + 10 * static_cast<std::uint64_t>(round));

    auto oracle = MotifFleetEngine::Create(config.options, metric);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    for (std::size_t s = 0; s < config.streams; ++s) {
      ASSERT_EQ(s, oracle.value().AddStream().value());
    }

    testing_util::FaultFs fs(seed + 11 * static_cast<std::uint64_t>(round));
    DurableOptions durable;
    durable.state_dir = "cstate";
    durable.fs = &fs;
    durable.checkpoint_interval_records = 0;  // explicit checkpoints only

    std::uint64_t generation = 0;
    std::size_t tail_records = 0;
    {
      auto fleet = DurableFleet::Open(config.options, metric, durable);
      ASSERT_TRUE(fleet.ok()) << fleet.status();
      for (std::size_t s = 0; s < config.streams; ++s) {
        ASSERT_EQ(s, fleet.value().AddStream().value());
      }
      std::vector<std::size_t> cursor(config.streams, 0);
      const std::size_t half = schedule.size() / 2;
      for (std::size_t k = 0; k < schedule.size(); ++k) {
        if (k == half) {
          ASSERT_TRUE(fleet.value().Checkpoint().ok());
        }
        const std::size_t s = schedule[k];
        const Point& p = data[s][static_cast<Index>(cursor[s]++)];
        ASSERT_TRUE(fleet.value().Push(s, p).ok());
        ASSERT_TRUE(oracle.value().Push(s, p).ok());
        if (k >= half) ++tail_records;
      }
      generation = fleet.value().generation();
      ASSERT_GE(generation, 2u);
    }
    fs.Restart();  // everything was synced; this is a clean shutdown

    char name[64];
    std::snprintf(name, sizeof(name), "cstate/snap-%06llu",
                  static_cast<unsigned long long>(generation));
    ASSERT_TRUE(fs.FlipBit(name, rng.NextUint64()));

    auto reopened = DurableFleet::Open(config.options, metric, durable);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_TRUE(reopened.value().recovery().restored_snapshot);
    // Fallback replays the previous generation's journal too, not just
    // the records written after the (corrupt) newest snapshot.
    EXPECT_GT(reopened.value().recovery().replayed_records, tail_records);
    ExpectSameEngineState(oracle.value(), reopened.value().engine());
  }
}

// Round family D: `sync_each_record = false`. A hard kill may lose an
// unsynced journal tail — but only the tail: recovery lands on a clean
// prefix, and re-pushing from the recovered released counts reconverges
// on the oracle.
TEST(DurableRecoveryFuzz, UnsyncedJournalTailLosesOnlyTheTail) {
  const std::uint64_t seed = testing_util::FuzzSeed(20260804);
  const int rounds = testing_util::FuzzRounds(3);
  Rng rng(seed);
  const EuclideanMetric metric;
  for (int round = 0; round < rounds; ++round) {
    const FuzzConfig config = DrawConfig(&rng, /*reorder_capacity=*/0);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " round " << round
                 << ": W=" << config.options.stream.window_length
                 << " streams=" << config.streams << " n=" << config.points
                 << " eps=" << config.options.join_epsilon);
    const std::vector<std::size_t> schedule = DrawSchedule(&rng, config);
    const std::vector<Trajectory> data =
        DrawData(config, seed + 6000 + 10 * static_cast<std::uint64_t>(round));

    auto oracle = MotifFleetEngine::Create(config.options, metric);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    std::vector<std::size_t> cursor(config.streams, 0);
    for (std::size_t s = 0; s < config.streams; ++s) {
      ASSERT_EQ(s, oracle.value().AddStream().value());
    }
    for (const std::size_t s : schedule) {
      ASSERT_TRUE(oracle.value().Push(s, data[s][static_cast<Index>(cursor[s]++)]).ok());
    }

    testing_util::FaultFs fs(seed + 13 * static_cast<std::uint64_t>(round));
    DurableOptions durable;
    durable.state_dir = "dstate";
    durable.fs = &fs;
    durable.sync_each_record = false;
    durable.checkpoint_interval_records = 0;  // keep the tail unsynced

    const std::size_t prefix =
        static_cast<std::size_t>(rng.NextInt(1, schedule.size() - 1));
    {
      auto fleet = DurableFleet::Open(config.options, metric, durable);
      ASSERT_TRUE(fleet.ok()) << fleet.status();
      for (std::size_t s = 0; s < config.streams; ++s) {
        ASSERT_EQ(s, fleet.value().AddStream().value());
      }
      std::vector<std::size_t> seen(config.streams, 0);
      for (std::size_t k = 0; k < prefix; ++k) {
        const std::size_t s = schedule[k];
        ASSERT_TRUE(fleet.value().Push(s, data[s][static_cast<Index>(seen[s]++)]).ok());
      }
    }
    fs.Restart();  // hard kill: the unsynced tail collapses

    auto fleet = DurableFleet::Open(config.options, metric, durable);
    ASSERT_TRUE(fleet.ok()) << fleet.status();
    ASSERT_EQ(config.streams, fleet.value().stream_count());
    std::size_t recovered = 0;
    for (std::size_t s = 0; s < config.streams; ++s) {
      cursor[s] = static_cast<std::size_t>(
          fleet.value().engine().ingest_stats(s).released);
      recovered += cursor[s];
    }
    // Only the tail may be gone — never more than was pushed, and the
    // committed records form a prefix of the schedule.
    ASSERT_LE(recovered, prefix);
    std::vector<std::size_t> seen(config.streams, 0);
    for (const std::size_t s : schedule) {
      const std::size_t index = seen[s]++;
      if (index < cursor[s]) continue;
      ASSERT_TRUE(fleet.value().Push(s, data[s][static_cast<Index>(index)]).ok());
    }
    ASSERT_TRUE(fleet.value().Sync().ok());
    ExpectSameEngineState(oracle.value(), fleet.value().engine());
  }
}

}  // namespace
}  // namespace frechet_motif
