#ifndef FRECHET_MOTIF_TESTS_TEST_UTIL_H_
#define FRECHET_MOTIF_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/distance_matrix.h"
#include "core/trajectory.h"
#include "util/random.h"

namespace frechet_motif {
namespace testing_util {

/// Seed for a randomized (fuzz-style) test: `default_seed` unless the
/// FMOTIF_FUZZ_SEED environment variable overrides it. The seed in use
/// is printed unconditionally, so any failure report carries what is
/// needed to reproduce it:
///
///     FMOTIF_FUZZ_SEED=<printed seed> ctest -R <test> --output-on-failure
inline std::uint64_t FuzzSeed(std::uint64_t default_seed) {
  std::uint64_t seed = default_seed;
  if (const char* env = std::getenv("FMOTIF_FUZZ_SEED");
      env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::fprintf(stderr,
               "[fuzz] seed = %llu (rerun with FMOTIF_FUZZ_SEED=%llu)\n",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(seed));
  return seed;
}

/// Iteration count for a randomized test: `default_rounds` unless
/// FMOTIF_FUZZ_ROUNDS overrides it (CI's extended-fuzz job raises it).
inline int FuzzRounds(int default_rounds) {
  if (const char* env = std::getenv("FMOTIF_FUZZ_ROUNDS");
      env != nullptr && *env != '\0') {
    const long rounds = std::strtol(env, nullptr, 10);
    if (rounds > 0) return static_cast<int>(rounds);
  }
  return default_rounds;
}

/// Random non-negative symmetric "ground distance" matrix with zero
/// diagonal (n x n). The motif algorithms only read dG through the
/// DistanceProvider interface, so algorithm-agreement tests can use
/// arbitrary matrices — adversarial inputs that real metrics rarely
/// produce.
inline DistanceMatrix MakeRandomSelfMatrix(Index n, std::uint64_t seed,
                                           double scale = 100.0) {
  Rng rng(seed);
  std::vector<double> values(static_cast<std::size_t>(n) * n, 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      const double d = rng.NextDouble(0.0, scale);
      values[static_cast<std::size_t>(i) * n + j] = d;
      values[static_cast<std::size_t>(j) * n + i] = d;
    }
  }
  return DistanceMatrix::FromValues(n, n, std::move(values)).value();
}

/// Random rectangular non-negative matrix (n x m), for the cross-trajectory
/// variant.
inline DistanceMatrix MakeRandomCrossMatrix(Index n, Index m,
                                            std::uint64_t seed,
                                            double scale = 100.0) {
  Rng rng(seed);
  std::vector<double> values(static_cast<std::size_t>(n) * m);
  for (double& v : values) v = rng.NextDouble(0.0, scale);
  return DistanceMatrix::FromValues(n, m, std::move(values)).value();
}

/// Small planar random-walk trajectory (coordinates in meters, for use
/// with the Euclidean metric).
inline Trajectory MakePlanarWalk(Index n, std::uint64_t seed,
                                 double step = 10.0) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  double x = 0.0;
  double y = 0.0;
  for (Index i = 0; i < n; ++i) {
    points.emplace_back(x, y);
    x += rng.NextGaussian(0.0, step);
    y += rng.NextGaussian(0.0, step);
  }
  return Trajectory(std::move(points));
}

}  // namespace testing_util
}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_TESTS_TEST_UTIL_H_
