#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "util/flags.h"
#include "util/json_writer.h"
#include "util/memory_tracker.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace {

// ------------------------------------------------------------------- random

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedValuesStayInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const std::int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextUint64(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(23);
  double sum = 0.0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.15);
}

// ------------------------------------------------------------------- timer

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedMillis(), 15.0);
  EXPECT_GE(timer.ElapsedNanos(), 15'000'000);
}

TEST(TimerTest, RestartResets) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.Restart();
  EXPECT_LT(timer.ElapsedMillis(), 10.0);
}

// ----------------------------------------------------------- memory tracker

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker t;
  t.Add(100);
  t.Add(50);
  EXPECT_EQ(t.current_bytes(), 150u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Release(120);
  EXPECT_EQ(t.current_bytes(), 30u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Add(10);
  EXPECT_EQ(t.peak_bytes(), 150u);
}

TEST(MemoryTrackerTest, ReleaseClampsAtZero) {
  MemoryTracker t;
  t.Add(10);
  t.Release(100);
  EXPECT_EQ(t.current_bytes(), 0u);
}

TEST(MemoryTrackerTest, ResetClearsEverything) {
  MemoryTracker t;
  t.Add(1000);
  t.Reset();
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 0u);
}

TEST(MemoryTrackerTest, ScopedAllocationReleasesOnDestruction) {
  MemoryTracker t;
  {
    ScopedAllocation a(&t, 64);
    EXPECT_EQ(t.current_bytes(), 64u);
  }
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 64u);
}

TEST(MemoryTrackerTest, ScopedAllocationToleratesNull) {
  ScopedAllocation a(nullptr, 64);  // must not crash
}

TEST(FormatBytesTest, PicksHumanUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MiB");
}

// -------------------------------------------------------------------- flags

TEST(FlagsTest, ParsesValuesAndPositionals) {
  const char* argv[] = {"prog", "--n=100", "--full", "input.csv",
                        "--ratio=0.5"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(flags.GetInt("n", 0), 100);
  EXPECT_TRUE(flags.GetBool("full", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 0.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
}

TEST(FlagsTest, DefaultsWhenAbsentOrMalformed) {
  const char* argv[] = {"prog", "--n=abc"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_EQ(flags.GetInt("n", 7), 7);       // unparsable -> default
  EXPECT_EQ(flags.GetInt("missing", 9), 9); // absent -> default
}

TEST(FlagsTest, RejectsBareDoubleDash) {
  const char* argv[] = {"prog", "--"};
  Flags flags;
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, ParsesIntLists) {
  const char* argv[] = {"prog", "--lengths=500,1000,5000"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  const std::vector<std::int64_t> v = flags.GetIntList("lengths", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 500);
  EXPECT_EQ(v[2], 5000);
}

TEST(FlagsTest, BoolValueSpellings) {
  const char* argv[] = {"prog", "--a=TRUE", "--b=0", "--c=yes", "--d=off"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_TRUE(flags.GetBool("d", true));  // unknown spelling -> default
}

TEST(FlagsTest, RejectsEmptyFlagName) {
  const char* argv[] = {"prog", "--=x"};
  Flags flags;
  const Status s = flags.Parse(2, argv);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, LastDuplicateWins) {
  const char* argv[] = {"prog", "--n=1", "--n=2"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

TEST(FlagsTest, EmptyValueIsPresentButFallsBackPerType) {
  const char* argv[] = {"prog", "--name="};
  Flags flags;
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name", "d"), "");
  EXPECT_EQ(flags.GetInt("name", 7), 7);
  EXPECT_TRUE(flags.GetBool("name", true));
  EXPECT_FALSE(flags.GetBool("name", false));
}

TEST(FlagsTest, TrailingGarbageNumbersFallBack) {
  const char* argv[] = {"prog", "--n=12abc", "--eps=1.5x"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt("n", -1), -1);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", -1.0), -1.0);
}

TEST(FlagsTest, IntListSkipsMalformedAndEmptyEntries) {
  const char* argv[] = {"prog", "--xs=1,zz,3,", "--ys=,,"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  const std::vector<std::int64_t> xs = flags.GetIntList("xs", {});
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], 1);
  EXPECT_EQ(xs[1], 3);
  // Nothing parsable at all -> the default, not an empty list.
  const std::vector<std::int64_t> ys = flags.GetIntList("ys", {42});
  ASSERT_EQ(ys.size(), 1u);
  EXPECT_EQ(ys[0], 42);
}

TEST(FlagsTest, BarePresenceReadsAsTrueString) {
  const char* argv[] = {"prog", "--verbose"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_EQ(flags.GetString("verbose", ""), "true");
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

// ------------------------------------------------------------ table printer

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"n", "1000"});
  t.AddRow({"longer-name", "7"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| longer-name | 7     |"), std::string::npos) << out;
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(TablePrinter::FmtPercent(0.923, 1), "92.3%");
}

// ---------------------------------------------------------------- json

TEST(JsonWriterTest, NestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("motif");
  w.Key("found");
  w.Bool(true);
  w.Key("ranges");
  w.BeginArray();
  w.Int(3);
  w.Int(7);
  w.EndArray();
  w.Key("empty");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"motif\",\n"
            "  \"found\": true,\n"
            "  \"ranges\": [\n"
            "    3,\n"
            "    7\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}\n");
}

TEST(JsonWriterTest, NumbersKeepFractionAndMapNonFiniteToNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(100.0);
  w.Double(0.5);
  w.Double(std::numeric_limits<double>::infinity());
  w.Null();
  w.EndArray();
  const std::string doc = w.str();
  EXPECT_NE(doc.find("100.0"), std::string::npos);
  EXPECT_NE(doc.find("0.5"), std::string::npos);
  // Infinity has no JSON literal; both nulls render identically.
  EXPECT_EQ(doc.find("inf"), std::string::npos);
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonEscape("say \"hi\"\n\tback\\slash"),
            "say \\\"hi\\\"\\n\\tback\\\\slash");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  JsonWriter w;
  w.String("a\"b");
  EXPECT_EQ(w.str(), "\"a\\\"b\"");
}

TEST(JsonWriterTest, EscapesDelAndEveryC0Control) {
  // DEL is a control character even though RFC 8259 tolerates it raw;
  // log pipelines do not.
  EXPECT_EQ(JsonEscape(std::string(1, '\x7f')), "\\u007f");
  EXPECT_EQ(JsonEscape("a\x7f"
                       "b"),
            "a\\u007fb");
  for (int c = 0; c < 0x20; ++c) {
    const std::string escaped = JsonEscape(std::string(1, static_cast<char>(c)));
    EXPECT_EQ('\\', escaped[0]) << "control 0x" << std::hex << c;
  }
}

TEST(JsonWriterTest, PassesUtf8BytesThroughUnchanged) {
  // Well-formed UTF-8 survives byte for byte...
  const std::string utf8 = "caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97";
  EXPECT_EQ(utf8, JsonEscape(utf8));
  // ...and so do invalid sequences (a lone continuation byte, a
  // truncated lead byte): the writer's contract is byte transparency
  // above 0x7f, never silent repair. The output is exactly as (in)valid
  // UTF-8 as the input was.
  const std::string lone_continuation("k\x80v", 3);
  EXPECT_EQ(lone_continuation, JsonEscape(lone_continuation));
  const std::string truncated_lead("x\xe2", 2);
  EXPECT_EQ(truncated_lead, JsonEscape(truncated_lead));
}

}  // namespace
}  // namespace frechet_motif
