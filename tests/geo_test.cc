#include <gtest/gtest.h>

#include <cmath>

#include "geo/great_circle.h"
#include "geo/metric.h"
#include "geo/point.h"

namespace frechet_motif {
namespace {

TEST(PointTest, AccessorsAliasCoordinates) {
  const Point p = LatLon(39.9, 116.4);
  EXPECT_DOUBLE_EQ(p.lat(), 39.9);
  EXPECT_DOUBLE_EQ(p.lon(), 116.4);
  EXPECT_DOUBLE_EQ(p.x, 39.9);
  EXPECT_DOUBLE_EQ(p.y, 116.4);
}

TEST(PointTest, FiniteCheck) {
  EXPECT_TRUE(Point(1.0, 2.0).IsFinite());
  EXPECT_FALSE(Point(std::nan(""), 0.0).IsFinite());
  EXPECT_FALSE(Point(0.0, INFINITY).IsFinite());
}

TEST(GreatCircleTest, ZeroForIdenticalPoints) {
  const Point p = LatLon(37.98, 23.73);
  EXPECT_DOUBLE_EQ(GreatCircleDistanceMeters(p, p), 0.0);
}

TEST(GreatCircleTest, Symmetric) {
  const Point a = LatLon(39.9042, 116.4074);
  const Point b = LatLon(31.2304, 121.4737);
  EXPECT_DOUBLE_EQ(GreatCircleDistanceMeters(a, b),
                   GreatCircleDistanceMeters(b, a));
}

TEST(GreatCircleTest, OneDegreeOfLatitudeIsAbout111Km) {
  const Point a = LatLon(0.0, 0.0);
  const Point b = LatLon(1.0, 0.0);
  const double d = GreatCircleDistanceMeters(a, b);
  EXPECT_NEAR(d, 111195.0, 100.0);  // pi/180 * R
}

TEST(GreatCircleTest, EquatorToPole) {
  const Point equator = LatLon(0.0, 0.0);
  const Point pole = LatLon(90.0, 0.0);
  const double quarter = M_PI / 2.0 * kEarthRadiusMeters;
  EXPECT_NEAR(GreatCircleDistanceMeters(equator, pole), quarter, 1.0);
}

TEST(GreatCircleTest, AntipodalPointsAreHalfCircumference) {
  const Point a = LatLon(0.0, 0.0);
  const Point b = LatLon(0.0, 180.0);
  EXPECT_NEAR(GreatCircleDistanceMeters(a, b), M_PI * kEarthRadiusMeters,
              1.0);
}

TEST(GreatCircleTest, BeijingToShanghaiRoughly1070Km) {
  const Point beijing = LatLon(39.9042, 116.4074);
  const Point shanghai = LatLon(31.2304, 121.4737);
  const double d = GreatCircleDistanceMeters(beijing, shanghai);
  EXPECT_GT(d, 1.0e6);
  EXPECT_LT(d, 1.15e6);
}

TEST(GreatCircleTest, StableForTinySeparations) {
  // Two points ~1.1cm apart; the haversine form must not collapse to 0.
  const Point a = LatLon(40.0, 116.0);
  const Point b = LatLon(40.0000001, 116.0);
  const double d = GreatCircleDistanceMeters(a, b);
  EXPECT_GT(d, 0.005);
  EXPECT_LT(d, 0.05);
}

TEST(MeterFrameTest, OffsetRoundTrip) {
  const Point origin = LatLon(39.9, 116.4);
  const Point moved = OffsetByMeters(origin, 250.0, -120.0);
  const Point back = MetersFromOrigin(origin, moved);
  EXPECT_NEAR(back.x, 250.0, 0.1);
  EXPECT_NEAR(back.y, -120.0, 0.1);
}

TEST(MeterFrameTest, OffsetDistanceMatchesHaversine) {
  const Point origin = LatLon(0.29, 36.90);
  const Point moved = OffsetByMeters(origin, 300.0, 400.0);
  // 3-4-5 triangle: 500m displacement.
  EXPECT_NEAR(GreatCircleDistanceMeters(origin, moved), 500.0, 1.0);
}

TEST(MetricTest, HaversineMetricDelegates) {
  const Point a = LatLon(10.0, 20.0);
  const Point b = LatLon(10.5, 20.5);
  EXPECT_DOUBLE_EQ(Haversine().Distance(a, b),
                   GreatCircleDistanceMeters(a, b));
  EXPECT_EQ(Haversine().Name(), "haversine");
}

TEST(MetricTest, EuclideanMetricIsPlanar) {
  EXPECT_DOUBLE_EQ(Euclidean().Distance(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_EQ(Euclidean().Name(), "euclidean");
}

TEST(MetricTest, MetricsSatisfyIdentityAndSymmetry) {
  const Point a = LatLon(1.0, 2.0);
  const Point b = LatLon(3.0, 4.0);
  for (const GroundMetric* metric :
       {static_cast<const GroundMetric*>(&Haversine()),
        static_cast<const GroundMetric*>(&Euclidean())}) {
    EXPECT_DOUBLE_EQ(metric->Distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(metric->Distance(a, b), metric->Distance(b, a));
    EXPECT_GE(metric->Distance(a, b), 0.0);
  }
}

}  // namespace
}  // namespace frechet_motif
