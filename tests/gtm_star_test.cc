#include "motif/gtm_star.h"

#include <gtest/gtest.h>

#include "core/options.h"
#include "geo/metric.h"
#include "motif/brute_dp.h"
#include "motif/gtm.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;
using testing_util::MakeRandomCrossMatrix;
using testing_util::MakeRandomSelfMatrix;

TEST(GtmStarTest, RejectsBadTau) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(30, 1);
  GtmStarOptions options;
  options.motif.min_length_xi = 2;
  options.group_size_tau = -3;
  EXPECT_FALSE(GtmStarMotif(dg, options).ok());
}

/// GTM* must return the exact BruteDP distance for every τ.
class GtmStarAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, std::uint64_t>> {
};

TEST_P(GtmStarAgreementTest, MatchesBruteDpSingle) {
  const auto [n, xi, tau, seed] = GetParam();
  const DistanceMatrix dg = MakeRandomSelfMatrix(n, seed);
  MotifOptions motif;
  motif.min_length_xi = xi;
  StatusOr<MotifResult> expect = BruteDpMotif(dg, motif);
  GtmStarOptions options;
  options.motif = motif;
  options.group_size_tau = tau;
  StatusOr<MotifResult> got = GtmStarMotif(dg, options);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got.value().found);
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance)
      << "n=" << n << " xi=" << xi << " tau=" << tau << " seed=" << seed;
}

TEST_P(GtmStarAgreementTest, MatchesBruteDpCross) {
  const auto [n, xi, tau, seed] = GetParam();
  const DistanceMatrix dg = MakeRandomCrossMatrix(n, n + 4, seed);
  MotifOptions motif;
  motif.min_length_xi = xi;
  motif.variant = MotifVariant::kCrossTrajectory;
  StatusOr<MotifResult> expect = BruteDpMotif(dg, motif);
  GtmStarOptions options;
  options.motif = motif;
  options.group_size_tau = tau;
  StatusOr<MotifResult> got = GtmStarMotif(dg, options);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance);
}

INSTANTIATE_TEST_SUITE_P(
    TauSweep, GtmStarAgreementTest,
    ::testing::Combine(::testing::Values(32, 48), ::testing::Values(2, 5),
                       ::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(5u, 9u)));

TEST(GtmStarTest, OnTheFlyPathMatchesMatrixPath) {
  // The trajectory overload builds no dG matrix; it must still match GTM
  // over a precomputed matrix.
  const Trajectory s = MakePlanarWalk(80, 2);
  MotifOptions motif;
  motif.min_length_xi = 6;
  GtmOptions gtm;
  gtm.motif = motif;
  gtm.group_size_tau = 8;
  GtmStarOptions star;
  star.motif = motif;
  star.group_size_tau = 8;
  StatusOr<MotifResult> expect = GtmMotif(s, Euclidean(), gtm);
  StatusOr<MotifResult> got = GtmStarMotif(s, Euclidean(), star);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance);
}

TEST(GtmStarTest, UsesLessPeakMemoryThanGtm) {
  const Trajectory s = MakePlanarWalk(300, 6);
  MotifOptions motif;
  motif.min_length_xi = 20;
  GtmOptions gtm;
  gtm.motif = motif;
  gtm.group_size_tau = 16;
  GtmStarOptions star;
  star.motif = motif;
  star.group_size_tau = 16;
  MotifStats gtm_stats;
  MotifStats star_stats;
  ASSERT_TRUE(GtmMotif(s, Euclidean(), gtm, &gtm_stats).ok());
  ASSERT_TRUE(GtmStarMotif(s, Euclidean(), star, &star_stats).ok());
  // GTM holds the full n^2 dG matrix; GTM* must stay well below that.
  EXPECT_LT(star_stats.memory.peak_bytes(), gtm_stats.memory.peak_bytes() / 4);
}

TEST(GtmStarTest, CrossTrajectoryOverloadIsExact) {
  const Trajectory s = MakePlanarWalk(40, 3);
  const Trajectory t = MakePlanarWalk(44, 4);
  MotifOptions motif;
  motif.min_length_xi = 4;
  motif.variant = MotifVariant::kCrossTrajectory;
  StatusOr<MotifResult> expect = BruteDpMotif(s, t, Euclidean(), motif);
  GtmStarOptions star;
  star.motif = motif;
  star.group_size_tau = 4;
  StatusOr<MotifResult> got = GtmStarMotif(s, t, Euclidean(), star);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.value().distance, expect.value().distance);
}

}  // namespace
}  // namespace frechet_motif
