#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geo/metric.h"
#include "similarity/dtw.h"
#include "similarity/edr.h"
#include "similarity/euclidean.h"
#include "similarity/frechet.h"
#include "similarity/lcss.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;

Trajectory Line(std::initializer_list<Point> pts) {
  return Trajectory(std::vector<Point>(pts));
}

// ---------------------------------------------------------------- Euclidean

TEST(EuclideanTest, RequiresEqualLengths) {
  const Trajectory a = MakePlanarWalk(5, 1);
  const Trajectory b = MakePlanarWalk(6, 2);
  EXPECT_FALSE(EuclideanSumDistance(a, b, Euclidean()).ok());
  EXPECT_FALSE(EuclideanMeanDistance(a, b, Euclidean()).ok());
  EXPECT_FALSE(EuclideanMaxDistance(a, b, Euclidean()).ok());
}

TEST(EuclideanTest, RejectsEmpty) {
  const Trajectory empty;
  EXPECT_FALSE(EuclideanSumDistance(empty, empty, Euclidean()).ok());
}

TEST(EuclideanTest, SumMeanMaxRelations) {
  const Trajectory a = MakePlanarWalk(10, 3);
  const Trajectory b = MakePlanarWalk(10, 4);
  const double sum = EuclideanSumDistance(a, b, Euclidean()).value();
  const double mean = EuclideanMeanDistance(a, b, Euclidean()).value();
  const double worst = EuclideanMaxDistance(a, b, Euclidean()).value();
  EXPECT_DOUBLE_EQ(mean, sum / 10.0);
  EXPECT_LE(mean, worst);
  EXPECT_LE(worst, sum);
}

TEST(EuclideanTest, KnownValues) {
  const Trajectory a = Line({{0, 0}, {0, 0}});
  const Trajectory b = Line({{3, 4}, {0, 1}});
  EXPECT_DOUBLE_EQ(EuclideanSumDistance(a, b, Euclidean()).value(), 6.0);
  EXPECT_DOUBLE_EQ(EuclideanMeanDistance(a, b, Euclidean()).value(), 3.0);
  EXPECT_DOUBLE_EQ(EuclideanMaxDistance(a, b, Euclidean()).value(), 5.0);
}

TEST(EuclideanTest, ZeroForIdenticalInput) {
  const Trajectory a = MakePlanarWalk(12, 5);
  EXPECT_DOUBLE_EQ(EuclideanSumDistance(a, a, Euclidean()).value(), 0.0);
}

// ---------------------------------------------------------------------- DTW

TEST(DtwTest, RejectsEmpty) {
  const Trajectory empty;
  const Trajectory one = Line({{0, 0}});
  EXPECT_FALSE(DtwDistance(empty, one, Euclidean()).ok());
}

TEST(DtwTest, IdenticalInputsGiveZero) {
  const Trajectory a = MakePlanarWalk(20, 6);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a, Euclidean()).value(), 0.0);
}

TEST(DtwTest, SingleVsMultiPointSumsAllDistances) {
  const Trajectory a = Line({{0, 0}});
  const Trajectory b = Line({{1, 0}, {2, 0}, {3, 0}});
  // Every b point must match a's single point: 1 + 2 + 3.
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, Euclidean()).value(), 6.0);
}

TEST(DtwTest, Symmetric) {
  const Trajectory a = MakePlanarWalk(15, 7);
  const Trajectory b = MakePlanarWalk(18, 8);
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, Euclidean()).value(),
                   DtwDistance(b, a, Euclidean()).value());
}

TEST(DtwTest, AtMostLockStepSum) {
  const Trajectory a = MakePlanarWalk(16, 9);
  const Trajectory b = MakePlanarWalk(16, 10);
  EXPECT_LE(DtwDistance(a, b, Euclidean()).value(),
            EuclideanSumDistance(a, b, Euclidean()).value() + 1e-12);
}

TEST(DtwTest, ToleratesLocalTimeShift) {
  // b is a with one sample duplicated: DTW absorbs it at zero cost.
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  const Trajectory b = Line({{0, 0}, {1, 0}, {1, 0}, {2, 0}, {3, 0}});
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, Euclidean()).value(), 0.0);
}

TEST(DtwTest, SensitiveToNonUniformSampling) {
  // The paper's Figure 3 argument: Sc traces the same path as Sa but with
  // denser sampling in one region; DTW accumulates the repeated matches
  // while DFD does not.
  const Trajectory sa = Line({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const Trajectory sb =
      Line({{0, 0.8}, {1, 0.8}, {2, 0.8}, {3, 0.8}, {4, 0.8}});
  // Same geometry as sa (offset 0.5), but oversampled around x in [0,1].
  const Trajectory sc = Line({{0, 0.5},
                              {0.2, 0.5},
                              {0.4, 0.5},
                              {0.6, 0.5},
                              {0.8, 0.5},
                              {1, 0.5},
                              {2, 0.5},
                              {3, 0.5},
                              {4, 0.5}});
  const double dtw_ab = DtwDistance(sa, sb, Euclidean()).value();
  const double dtw_ac = DtwDistance(sa, sc, Euclidean()).value();
  const double dfd_ab = DiscreteFrechet(sa, sb, Euclidean()).value();
  const double dfd_ac = DiscreteFrechet(sa, sc, Euclidean()).value();
  // Intuitively sc is closer to sa, and DFD agrees...
  EXPECT_LT(dfd_ac, dfd_ab);
  // ...but DTW inverts the ranking because of the oversampled stretch.
  EXPECT_GT(dtw_ac, dtw_ab);
}

// --------------------------------------------------------------------- LCSS

TEST(LcssTest, RejectsBadEpsilon) {
  const Trajectory a = MakePlanarWalk(5, 1);
  EXPECT_FALSE(LcssLength(a, a, Euclidean(), -1.0).ok());
}

TEST(LcssTest, IdenticalInputsMatchFully) {
  const Trajectory a = MakePlanarWalk(14, 11);
  EXPECT_EQ(LcssLength(a, a, Euclidean(), 0.0).value(), 14);
  EXPECT_DOUBLE_EQ(LcssDistance(a, a, Euclidean(), 0.0).value(), 0.0);
}

TEST(LcssTest, NoMatchesUnderTinyEpsilon) {
  const Trajectory a = Line({{0, 0}, {1, 0}});
  const Trajectory b = Line({{10, 10}, {11, 10}});
  EXPECT_EQ(LcssLength(a, b, Euclidean(), 0.5).value(), 0);
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, Euclidean(), 0.5).value(), 1.0);
}

TEST(LcssTest, SubsequenceDetected) {
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  // b interleaves far-away detours but contains a's points.
  const Trajectory b = Line(
      {{0, 0}, {50, 50}, {1, 0}, {60, 60}, {2, 0}, {70, 70}, {3, 0}});
  EXPECT_EQ(LcssLength(a, b, Euclidean(), 0.1).value(), 4);
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, Euclidean(), 0.1).value(), 0.0);
}

TEST(LcssTest, MonotoneInEpsilon) {
  const Trajectory a = MakePlanarWalk(20, 12);
  const Trajectory b = MakePlanarWalk(20, 13);
  Index prev = 0;
  for (double eps : {0.0, 5.0, 20.0, 80.0, 1000.0}) {
    const Index len = LcssLength(a, b, Euclidean(), eps).value();
    EXPECT_GE(len, prev);
    prev = len;
  }
  EXPECT_EQ(prev, 20);  // huge epsilon matches everything
}

// ---------------------------------------------------------------------- EDR

TEST(EdrTest, RejectsBadEpsilon) {
  const Trajectory a = MakePlanarWalk(5, 1);
  EXPECT_FALSE(EdrDistance(a, a, Euclidean(), -0.1).ok());
}

TEST(EdrTest, IdenticalInputsCostZero) {
  const Trajectory a = MakePlanarWalk(16, 14);
  EXPECT_EQ(EdrDistance(a, a, Euclidean(), 0.0).value(), 0);
}

TEST(EdrTest, CompletelyDifferentCostsMaxLength) {
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = Line({{100, 100}, {101, 100}});
  // Best edit script: substitute 2 (mismatches) + delete 1.
  EXPECT_EQ(EdrDistance(a, b, Euclidean(), 0.5).value(), 3);
  EXPECT_DOUBLE_EQ(EdrNormalized(a, b, Euclidean(), 0.5).value(), 1.0);
}

TEST(EdrTest, SingleInsertionCostsOne) {
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = Line({{0, 0}, {0.5, 0}, {1, 0}, {2, 0}});
  EXPECT_EQ(EdrDistance(a, b, Euclidean(), 0.1).value(), 1);
}

TEST(EdrTest, SymmetricAndBounded) {
  const Trajectory a = MakePlanarWalk(18, 15);
  const Trajectory b = MakePlanarWalk(22, 16);
  const Index d_ab = EdrDistance(a, b, Euclidean(), 10.0).value();
  const Index d_ba = EdrDistance(b, a, Euclidean(), 10.0).value();
  EXPECT_EQ(d_ab, d_ba);
  EXPECT_LE(d_ab, 22);                       // at most max length
  EXPECT_GE(d_ab, 22 - 18);                  // at least the length gap
}

// ------------------------------------------------ Table 1 cross-measure

TEST(Table1Test, OnlyDfdAndEdLikeMeasuresAreStudied) {
  // Smoke-check all five measures run on the same input (the Table 1
  // lineup) and produce finite values.
  const Trajectory a = MakePlanarWalk(30, 17);
  const Trajectory b = MakePlanarWalk(30, 18);
  EXPECT_TRUE(std::isfinite(EuclideanMeanDistance(a, b, Euclidean()).value()));
  EXPECT_TRUE(std::isfinite(DtwDistance(a, b, Euclidean()).value()));
  EXPECT_TRUE(std::isfinite(
      static_cast<double>(LcssLength(a, b, Euclidean(), 10.0).value())));
  EXPECT_TRUE(std::isfinite(
      static_cast<double>(EdrDistance(a, b, Euclidean(), 10.0).value())));
  EXPECT_TRUE(std::isfinite(DiscreteFrechet(a, b, Euclidean()).value()));
}

TEST(Table1Test, DfdRobustToResamplingButSumMeasuresAreNot) {
  // Duplicate every second sample of b: DFD is unchanged (couplings may
  // repeat points), DTW/EDR change.
  const Trajectory a = MakePlanarWalk(20, 19);
  std::vector<Point> dense;
  for (Index i = 0; i < a.size(); ++i) {
    dense.push_back(a[i]);
    if (i % 2 == 0) dense.push_back(a[i]);
  }
  const Trajectory b{std::vector<Point>(dense)};
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b, Euclidean()).value(), 0.0);
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, Euclidean()).value(), 0.0);
  // EDR pays one edit per duplicated sample.
  EXPECT_EQ(EdrDistance(a, b, Euclidean(), 1e-9).value(), 10);
}

// -------------------------------------------- Oracle-table edge cases
//
// The production DTW/EDR/LCSS use rolling rows (O(min) space); these
// oracles keep the full (la+1)×(lb+1) table in the textbook layout. Any
// divergence — especially at the single-row/column boundaries the
// rolling code hand-seeds — is a recurrence bug.

double DtwOracle(const Trajectory& a, const Trajectory& b) {
  const Index la = a.size(), lb = b.size();
  std::vector<std::vector<double>> t(
      static_cast<std::size_t>(la),
      std::vector<double>(static_cast<std::size_t>(lb)));
  for (Index p = 0; p < la; ++p) {
    for (Index q = 0; q < lb; ++q) {
      const double d = Euclidean().Distance(a[p], b[q]);
      if (p == 0 && q == 0) {
        t[p][q] = d;
      } else if (p == 0) {
        t[p][q] = t[p][q - 1] + d;
      } else if (q == 0) {
        t[p][q] = t[p - 1][q] + d;
      } else {
        t[p][q] =
            d + std::min({t[p - 1][q], t[p][q - 1], t[p - 1][q - 1]});
      }
    }
  }
  return t[la - 1][lb - 1];
}

Index EdrOracle(const Trajectory& a, const Trajectory& b, double epsilon) {
  const Index la = a.size(), lb = b.size();
  std::vector<std::vector<Index>> t(
      static_cast<std::size_t>(la) + 1,
      std::vector<Index>(static_cast<std::size_t>(lb) + 1));
  for (Index p = 0; p <= la; ++p) t[p][0] = p;
  for (Index q = 0; q <= lb; ++q) t[0][q] = q;
  for (Index p = 1; p <= la; ++p) {
    for (Index q = 1; q <= lb; ++q) {
      const Index subst =
          Euclidean().Distance(a[p - 1], b[q - 1]) <= epsilon ? 0 : 1;
      t[p][q] = std::min({static_cast<Index>(t[p - 1][q - 1] + subst),
                          static_cast<Index>(t[p - 1][q] + 1),
                          static_cast<Index>(t[p][q - 1] + 1)});
    }
  }
  return t[la][lb];
}

Index LcssOracle(const Trajectory& a, const Trajectory& b, double epsilon) {
  const Index la = a.size(), lb = b.size();
  std::vector<std::vector<Index>> t(
      static_cast<std::size_t>(la) + 1,
      std::vector<Index>(static_cast<std::size_t>(lb) + 1, 0));
  for (Index p = 1; p <= la; ++p) {
    for (Index q = 1; q <= lb; ++q) {
      if (Euclidean().Distance(a[p - 1], b[q - 1]) <= epsilon) {
        t[p][q] = t[p - 1][q - 1] + 1;
      } else {
        t[p][q] = std::max(t[p - 1][q], t[p][q - 1]);
      }
    }
  }
  return t[la][lb];
}

TEST(OracleTableTest, RollingRowsMatchFullTablesOnRandomPairs) {
  const std::uint64_t seed = testing_util::FuzzSeed(60617);
  const int rounds = testing_util::FuzzRounds(6);
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    const Index n = static_cast<Index>(rng.NextInt(1, 40));
    const Index m = static_cast<Index>(rng.NextInt(1, 40));
    const Trajectory a = MakePlanarWalk(n, rng.NextUint64());
    const Trajectory b = MakePlanarWalk(m, rng.NextUint64());
    const double eps = rng.NextDouble(0.0, 30.0);
    EXPECT_EQ(DtwOracle(a, b), DtwDistance(a, b, Euclidean()).value());
    EXPECT_EQ(EdrOracle(a, b, eps),
              EdrDistance(a, b, Euclidean(), eps).value());
    EXPECT_EQ(LcssOracle(a, b, eps),
              LcssLength(a, b, Euclidean(), eps).value());
  }
}

TEST(OracleTableTest, SinglePointAndSingleRowShapes) {
  // The rolling-row implementations special-case the first row/column;
  // 1×1, 1×m and n×1 shapes exercise exactly those seams.
  const Trajectory one = Line({{1, 2}});
  const Trajectory other = Line({{4, 6}});
  const Trajectory row = Line({{0, 0}, {3, 4}, {6, 8}});
  EXPECT_DOUBLE_EQ(DtwDistance(one, other, Euclidean()).value(), 5.0);
  // 1×m DTW sums every ground distance along the single row.
  EXPECT_DOUBLE_EQ(DtwDistance(one, row, Euclidean()).value(),
                   std::sqrt(5.0) + std::sqrt(8.0) + std::sqrt(61.0));
  EXPECT_DOUBLE_EQ(DtwDistance(row, one, Euclidean()).value(),
                   DtwDistance(one, row, Euclidean()).value());
  // 1×m EDR: one substitution (or unit edit) plus m-1 deletes.
  EXPECT_EQ(EdrDistance(one, row, Euclidean(), 1000.0).value(), 2);
  EXPECT_EQ(EdrDistance(one, row, Euclidean(), 0.0).value(), 3);
  EXPECT_EQ(EdrDistance(row, one, Euclidean(), 1000.0).value(), 2);
  // 1×m LCSS is 1 iff any point of `row` is within epsilon.
  EXPECT_EQ(LcssLength(one, row, Euclidean(), 2.9).value(), 1);
  EXPECT_EQ(LcssLength(one, row, Euclidean(), 0.5).value(), 0);
  EXPECT_DOUBLE_EQ(LcssDistance(one, row, Euclidean(), 2.9).value(), 0.0);
  EXPECT_DOUBLE_EQ(LcssDistance(one, row, Euclidean(), 0.5).value(), 1.0);
}

TEST(OracleTableTest, EpsilonBoundaryIsInclusive) {
  // Matching is d <= epsilon, not <: a pair at exactly epsilon matches.
  const Trajectory a = Line({{0, 0}});
  const Trajectory b = Line({{3, 4}});  // distance exactly 5
  EXPECT_EQ(EdrDistance(a, b, Euclidean(), 5.0).value(), 0);
  EXPECT_EQ(EdrDistance(a, b, Euclidean(), std::nextafter(5.0, 0.0)).value(),
            1);
  EXPECT_EQ(LcssLength(a, b, Euclidean(), 5.0).value(), 1);
  EXPECT_EQ(LcssLength(a, b, Euclidean(), std::nextafter(5.0, 0.0)).value(),
            0);
}

TEST(OracleTableTest, EdrRespectsEditDistanceBounds) {
  // Hand-checkable table: EDR is bounded below by the length gap and
  // above by max length, and normalization lands in [0, 1].
  const Trajectory a = MakePlanarWalk(9, 23);
  const Trajectory b = MakePlanarWalk(17, 24);
  const Index d = EdrDistance(a, b, Euclidean(), 5.0).value();
  EXPECT_GE(d, 8);   // |la - lb|
  EXPECT_LE(d, 17);  // max(la, lb)
  const double norm = EdrNormalized(a, b, Euclidean(), 5.0).value();
  EXPECT_DOUBLE_EQ(norm, static_cast<double>(d) / 17.0);
  EXPECT_GE(norm, 0.0);
  EXPECT_LE(norm, 1.0);
  // Self distance at any epsilon >= 0 is 0 / normalized 0.
  EXPECT_EQ(EdrDistance(b, b, Euclidean(), 0.0).value(), 0);
  EXPECT_DOUBLE_EQ(EdrNormalized(b, b, Euclidean(), 0.0).value(), 0.0);
}

TEST(OracleTableTest, LcssPrefixAndSubsequenceIdentities) {
  // A prefix is a common subsequence of the whole: LCSS(a, a[:k]) == k,
  // so the normalized distance (denominator min length) is exactly 0.
  const Trajectory a = MakePlanarWalk(15, 29);
  std::vector<Point> prefix;
  for (Index i = 0; i < 6; ++i) prefix.push_back(a[i]);
  const Trajectory p{std::vector<Point>(prefix)};
  EXPECT_EQ(LcssLength(a, p, Euclidean(), 0.0).value(), 6);
  EXPECT_DOUBLE_EQ(LcssDistance(a, p, Euclidean(), 0.0).value(), 0.0);
  // Interleaving foreign points leaves the subsequence intact.
  std::vector<Point> noisy;
  for (Index i = 0; i < a.size(); ++i) {
    noisy.push_back(a[i]);
    noisy.push_back(Point{1e6 + static_cast<double>(i), -1e6});
  }
  const Trajectory n{std::vector<Point>(noisy)};
  EXPECT_EQ(LcssLength(a, n, Euclidean(), 0.0).value(), a.size());
}

}  // namespace
}  // namespace frechet_motif
