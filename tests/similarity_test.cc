#include <gtest/gtest.h>

#include <vector>

#include "geo/metric.h"
#include "similarity/dtw.h"
#include "similarity/edr.h"
#include "similarity/euclidean.h"
#include "similarity/frechet.h"
#include "similarity/lcss.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;

Trajectory Line(std::initializer_list<Point> pts) {
  return Trajectory(std::vector<Point>(pts));
}

// ---------------------------------------------------------------- Euclidean

TEST(EuclideanTest, RequiresEqualLengths) {
  const Trajectory a = MakePlanarWalk(5, 1);
  const Trajectory b = MakePlanarWalk(6, 2);
  EXPECT_FALSE(EuclideanSumDistance(a, b, Euclidean()).ok());
  EXPECT_FALSE(EuclideanMeanDistance(a, b, Euclidean()).ok());
  EXPECT_FALSE(EuclideanMaxDistance(a, b, Euclidean()).ok());
}

TEST(EuclideanTest, RejectsEmpty) {
  const Trajectory empty;
  EXPECT_FALSE(EuclideanSumDistance(empty, empty, Euclidean()).ok());
}

TEST(EuclideanTest, SumMeanMaxRelations) {
  const Trajectory a = MakePlanarWalk(10, 3);
  const Trajectory b = MakePlanarWalk(10, 4);
  const double sum = EuclideanSumDistance(a, b, Euclidean()).value();
  const double mean = EuclideanMeanDistance(a, b, Euclidean()).value();
  const double worst = EuclideanMaxDistance(a, b, Euclidean()).value();
  EXPECT_DOUBLE_EQ(mean, sum / 10.0);
  EXPECT_LE(mean, worst);
  EXPECT_LE(worst, sum);
}

TEST(EuclideanTest, KnownValues) {
  const Trajectory a = Line({{0, 0}, {0, 0}});
  const Trajectory b = Line({{3, 4}, {0, 1}});
  EXPECT_DOUBLE_EQ(EuclideanSumDistance(a, b, Euclidean()).value(), 6.0);
  EXPECT_DOUBLE_EQ(EuclideanMeanDistance(a, b, Euclidean()).value(), 3.0);
  EXPECT_DOUBLE_EQ(EuclideanMaxDistance(a, b, Euclidean()).value(), 5.0);
}

TEST(EuclideanTest, ZeroForIdenticalInput) {
  const Trajectory a = MakePlanarWalk(12, 5);
  EXPECT_DOUBLE_EQ(EuclideanSumDistance(a, a, Euclidean()).value(), 0.0);
}

// ---------------------------------------------------------------------- DTW

TEST(DtwTest, RejectsEmpty) {
  const Trajectory empty;
  const Trajectory one = Line({{0, 0}});
  EXPECT_FALSE(DtwDistance(empty, one, Euclidean()).ok());
}

TEST(DtwTest, IdenticalInputsGiveZero) {
  const Trajectory a = MakePlanarWalk(20, 6);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a, Euclidean()).value(), 0.0);
}

TEST(DtwTest, SingleVsMultiPointSumsAllDistances) {
  const Trajectory a = Line({{0, 0}});
  const Trajectory b = Line({{1, 0}, {2, 0}, {3, 0}});
  // Every b point must match a's single point: 1 + 2 + 3.
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, Euclidean()).value(), 6.0);
}

TEST(DtwTest, Symmetric) {
  const Trajectory a = MakePlanarWalk(15, 7);
  const Trajectory b = MakePlanarWalk(18, 8);
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, Euclidean()).value(),
                   DtwDistance(b, a, Euclidean()).value());
}

TEST(DtwTest, AtMostLockStepSum) {
  const Trajectory a = MakePlanarWalk(16, 9);
  const Trajectory b = MakePlanarWalk(16, 10);
  EXPECT_LE(DtwDistance(a, b, Euclidean()).value(),
            EuclideanSumDistance(a, b, Euclidean()).value() + 1e-12);
}

TEST(DtwTest, ToleratesLocalTimeShift) {
  // b is a with one sample duplicated: DTW absorbs it at zero cost.
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  const Trajectory b = Line({{0, 0}, {1, 0}, {1, 0}, {2, 0}, {3, 0}});
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, Euclidean()).value(), 0.0);
}

TEST(DtwTest, SensitiveToNonUniformSampling) {
  // The paper's Figure 3 argument: Sc traces the same path as Sa but with
  // denser sampling in one region; DTW accumulates the repeated matches
  // while DFD does not.
  const Trajectory sa = Line({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const Trajectory sb =
      Line({{0, 0.8}, {1, 0.8}, {2, 0.8}, {3, 0.8}, {4, 0.8}});
  // Same geometry as sa (offset 0.5), but oversampled around x in [0,1].
  const Trajectory sc = Line({{0, 0.5},
                              {0.2, 0.5},
                              {0.4, 0.5},
                              {0.6, 0.5},
                              {0.8, 0.5},
                              {1, 0.5},
                              {2, 0.5},
                              {3, 0.5},
                              {4, 0.5}});
  const double dtw_ab = DtwDistance(sa, sb, Euclidean()).value();
  const double dtw_ac = DtwDistance(sa, sc, Euclidean()).value();
  const double dfd_ab = DiscreteFrechet(sa, sb, Euclidean()).value();
  const double dfd_ac = DiscreteFrechet(sa, sc, Euclidean()).value();
  // Intuitively sc is closer to sa, and DFD agrees...
  EXPECT_LT(dfd_ac, dfd_ab);
  // ...but DTW inverts the ranking because of the oversampled stretch.
  EXPECT_GT(dtw_ac, dtw_ab);
}

// --------------------------------------------------------------------- LCSS

TEST(LcssTest, RejectsBadEpsilon) {
  const Trajectory a = MakePlanarWalk(5, 1);
  EXPECT_FALSE(LcssLength(a, a, Euclidean(), -1.0).ok());
}

TEST(LcssTest, IdenticalInputsMatchFully) {
  const Trajectory a = MakePlanarWalk(14, 11);
  EXPECT_EQ(LcssLength(a, a, Euclidean(), 0.0).value(), 14);
  EXPECT_DOUBLE_EQ(LcssDistance(a, a, Euclidean(), 0.0).value(), 0.0);
}

TEST(LcssTest, NoMatchesUnderTinyEpsilon) {
  const Trajectory a = Line({{0, 0}, {1, 0}});
  const Trajectory b = Line({{10, 10}, {11, 10}});
  EXPECT_EQ(LcssLength(a, b, Euclidean(), 0.5).value(), 0);
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, Euclidean(), 0.5).value(), 1.0);
}

TEST(LcssTest, SubsequenceDetected) {
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  // b interleaves far-away detours but contains a's points.
  const Trajectory b = Line(
      {{0, 0}, {50, 50}, {1, 0}, {60, 60}, {2, 0}, {70, 70}, {3, 0}});
  EXPECT_EQ(LcssLength(a, b, Euclidean(), 0.1).value(), 4);
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, Euclidean(), 0.1).value(), 0.0);
}

TEST(LcssTest, MonotoneInEpsilon) {
  const Trajectory a = MakePlanarWalk(20, 12);
  const Trajectory b = MakePlanarWalk(20, 13);
  Index prev = 0;
  for (double eps : {0.0, 5.0, 20.0, 80.0, 1000.0}) {
    const Index len = LcssLength(a, b, Euclidean(), eps).value();
    EXPECT_GE(len, prev);
    prev = len;
  }
  EXPECT_EQ(prev, 20);  // huge epsilon matches everything
}

// ---------------------------------------------------------------------- EDR

TEST(EdrTest, RejectsBadEpsilon) {
  const Trajectory a = MakePlanarWalk(5, 1);
  EXPECT_FALSE(EdrDistance(a, a, Euclidean(), -0.1).ok());
}

TEST(EdrTest, IdenticalInputsCostZero) {
  const Trajectory a = MakePlanarWalk(16, 14);
  EXPECT_EQ(EdrDistance(a, a, Euclidean(), 0.0).value(), 0);
}

TEST(EdrTest, CompletelyDifferentCostsMaxLength) {
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = Line({{100, 100}, {101, 100}});
  // Best edit script: substitute 2 (mismatches) + delete 1.
  EXPECT_EQ(EdrDistance(a, b, Euclidean(), 0.5).value(), 3);
  EXPECT_DOUBLE_EQ(EdrNormalized(a, b, Euclidean(), 0.5).value(), 1.0);
}

TEST(EdrTest, SingleInsertionCostsOne) {
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = Line({{0, 0}, {0.5, 0}, {1, 0}, {2, 0}});
  EXPECT_EQ(EdrDistance(a, b, Euclidean(), 0.1).value(), 1);
}

TEST(EdrTest, SymmetricAndBounded) {
  const Trajectory a = MakePlanarWalk(18, 15);
  const Trajectory b = MakePlanarWalk(22, 16);
  const Index d_ab = EdrDistance(a, b, Euclidean(), 10.0).value();
  const Index d_ba = EdrDistance(b, a, Euclidean(), 10.0).value();
  EXPECT_EQ(d_ab, d_ba);
  EXPECT_LE(d_ab, 22);                       // at most max length
  EXPECT_GE(d_ab, 22 - 18);                  // at least the length gap
}

// ------------------------------------------------ Table 1 cross-measure

TEST(Table1Test, OnlyDfdAndEdLikeMeasuresAreStudied) {
  // Smoke-check all five measures run on the same input (the Table 1
  // lineup) and produce finite values.
  const Trajectory a = MakePlanarWalk(30, 17);
  const Trajectory b = MakePlanarWalk(30, 18);
  EXPECT_TRUE(std::isfinite(EuclideanMeanDistance(a, b, Euclidean()).value()));
  EXPECT_TRUE(std::isfinite(DtwDistance(a, b, Euclidean()).value()));
  EXPECT_TRUE(std::isfinite(
      static_cast<double>(LcssLength(a, b, Euclidean(), 10.0).value())));
  EXPECT_TRUE(std::isfinite(
      static_cast<double>(EdrDistance(a, b, Euclidean(), 10.0).value())));
  EXPECT_TRUE(std::isfinite(DiscreteFrechet(a, b, Euclidean()).value()));
}

TEST(Table1Test, DfdRobustToResamplingButSumMeasuresAreNot) {
  // Duplicate every second sample of b: DFD is unchanged (couplings may
  // repeat points), DTW/EDR change.
  const Trajectory a = MakePlanarWalk(20, 19);
  std::vector<Point> dense;
  for (Index i = 0; i < a.size(); ++i) {
    dense.push_back(a[i]);
    if (i % 2 == 0) dense.push_back(a[i]);
  }
  const Trajectory b{std::vector<Point>(dense)};
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b, Euclidean()).value(), 0.0);
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, Euclidean()).value(), 0.0);
  // EDR pays one edit per duplicated sample.
  EXPECT_EQ(EdrDistance(a, b, Euclidean(), 1e-9).value(), 10);
}

}  // namespace
}  // namespace frechet_motif
