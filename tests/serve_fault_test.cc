// Randomized fault schedules for the serve tier, mirroring
// durable_recovery_fuzz_test.cc on the transport side: inbound bytes
// torn at every boundary, short reads and writes, EAGAIN storms,
// resets at every frame position, slow subscribers, and garbage
// storms. The invariants under every schedule:
//
//  * the server never crashes and never blocks ingest;
//  * a surviving subscriber's report stream is bit-identical to a
//    batch MotifFleetEngine oracle fed the same acknowledged points
//    (parity-exact mode: unbudgeted, so batch boundaries cannot
//    change the report sequence);
//  * a killed or evicted connection never disturbs the others.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "fault_socket.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "serve/motif_server.h"
#include "serve_test_util.h"
#include "stream/motif_fleet_engine.h"
#include "test_util.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

using testing_util::FaultConn;
using testing_util::Frames;
using testing_util::FramesOfType;
using testing_util::FuzzRounds;
using testing_util::FuzzSeed;
using testing_util::HasFrame;
using testing_util::OracleReportFrames;

ServeOptions SmallOptions() {
  ServeOptions options;
  options.fleet.stream.window_length = 8;
  options.fleet.stream.slide_step = 2;
  options.fleet.stream.min_length_xi = 2;
  return options;
}

MotifServer MakeServer(const ServeOptions& options) {
  return std::move(MotifServer::Create(options, Euclidean())).value();
}

std::string Row(std::size_t stream, double lat, double lon) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%zu,%.6f,%.6f\n", stream, lat, lon);
  return buf;
}

FleetArrival Arrival(std::size_t stream, double lat, double lon) {
  FleetArrival a;
  a.stream = stream;
  a.point = LatLon(lat, lon);
  return a;
}

/// The deterministic two-stream feed every schedule ingests: 60 points
/// alternating between streams 0 and 1, wiggly enough that motifs
/// appear and change across slides.
struct Feed {
  std::string wire;                   // concatenated ingest rows
  std::vector<FleetArrival> points;   // the same rows, decoded
};

Feed MakeFeed(int n = 60) {
  Feed feed;
  for (int i = 0; i < n; ++i) {
    const std::size_t stream = static_cast<std::size_t>(i % 2);
    const double lat = 40.0 + 0.002 * (i % 7) + 0.01 * static_cast<int>(stream);
    const double lon = -70.0 + 0.001 * i;
    feed.wire += Row(stream, lat, lon);
    feed.points.push_back(Arrival(stream, lat, lon));
  }
  return feed;
}

// ---------------------------------------------------------------------------
// Torn chunks, short reads/writes, EAGAIN storms
// ---------------------------------------------------------------------------

TEST(ServeFault, TornChunksShortIoAndStallsPreserveParity) {
  const std::uint64_t seed = FuzzSeed(20260808);
  const int rounds = FuzzRounds(12);
  const ServeOptions options = SmallOptions();
  const Feed feed = MakeFeed();
  const std::vector<std::string> want =
      OracleReportFrames(options.fleet, Euclidean(), feed.points);
  ASSERT_FALSE(want.empty());

  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    MotifServer server = MakeServer(options);
    std::int64_t now = 0;

    FaultConn sub;
    const MotifServer::ConnId sub_id = server.OnAccept(sub.NewSocket(), now);
    sub.Feed("SUB reports\n");
    server.OnReadable(sub_id, now);
    sub.TakeOutput();
    // The subscriber survives, but with a rude transport: every write
    // is short and interleaved with EAGAIN stalls.
    sub.set_max_write(1 + static_cast<std::size_t>(rng.NextUint64(5)));

    FaultConn ingest;
    const MotifServer::ConnId ingest_id =
        server.OnAccept(ingest.NewSocket(), now);
    ingest.TakeOutput();
    ingest.set_max_read(1 + static_cast<std::size_t>(rng.NextUint64(4)));

    // Deliver the feed in random torn chunks with stall storms.
    std::size_t at = 0;
    while (at < feed.wire.size()) {
      const std::size_t chunk = 1 + static_cast<std::size_t>(
                                        rng.NextUint64(7));
      ingest.Feed(feed.wire.substr(at, chunk));
      at += chunk;
      if (rng.NextUint64(4) == 0) {
        ingest.StallReads(static_cast<int>(rng.NextUint64(3)) + 1);
      }
      server.OnReadable(ingest_id, ++now);
      // Stalled reads leave bytes pending: keep knocking until drained.
      int guard = 0;
      while (ingest.unread() > 0 && !ingest.failed() && ++guard < 64) {
        server.OnReadable(ingest_id, ++now);
      }
      ASSERT_LT(guard, 64) << "ingest wedged";
      if (rng.NextUint64(3) == 0) {
        sub.StallWrites(static_cast<int>(rng.NextUint64(2)) + 1);
      }
      server.OnWritable(sub_id, now);
      server.Tick(now);
    }
    // Let the subscriber drain completely.
    for (int k = 0; k < 64 && server.WantsWrite(sub_id); ++k) {
      server.OnWritable(sub_id, ++now);
    }

    EXPECT_EQ(0, server.stats().parse_errors) << "round " << round;
    EXPECT_EQ(static_cast<std::int64_t>(feed.points.size()),
              server.stats().points_ingested)
        << "round " << round;
    EXPECT_EQ(0, server.ConnDroppedFrames(sub_id)) << "round " << round;
    EXPECT_EQ(want, FramesOfType(sub.TakeOutput(), "report"))
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Resets at every frame boundary
// ---------------------------------------------------------------------------

TEST(ServeFault, SubscriberResetAtEveryOpNeverDisturbsSurvivors) {
  // Sweep the reset point across the doomed subscriber's whole I/O op
  // sequence. At every position: no crash, ingest completes, and the
  // surviving subscriber stays bit-identical to the oracle.
  const ServeOptions options = SmallOptions();
  const Feed feed = MakeFeed(40);
  const std::vector<std::string> want =
      OracleReportFrames(options.fleet, Euclidean(), feed.points);
  ASSERT_FALSE(want.empty());

  // Calibration run: how many ops does the doomed connection perform?
  std::int64_t total_ops = 0;
  {
    MotifServer server = MakeServer(options);
    FaultConn doomed;
    const MotifServer::ConnId id = server.OnAccept(doomed.NewSocket(), 0);
    doomed.Feed("SUB reports\n");
    server.OnReadable(id, 0);
    FaultConn ingest;
    const MotifServer::ConnId iid = server.OnAccept(ingest.NewSocket(), 0);
    ingest.Feed(feed.wire);
    server.OnReadable(iid, 1);
    total_ops = doomed.op_count();
  }
  ASSERT_GT(total_ops, 2);

  for (std::int64_t reset_at = 1; reset_at <= total_ops; ++reset_at) {
    MotifServer server = MakeServer(options);
    std::int64_t now = 0;

    FaultConn doomed;
    const MotifServer::ConnId doomed_id =
        server.OnAccept(doomed.NewSocket(), now);
    doomed.Feed("SUB reports\n");
    doomed.FailAfterOps(reset_at);
    server.OnReadable(doomed_id, now);

    FaultConn survivor;
    const MotifServer::ConnId survivor_id =
        server.OnAccept(survivor.NewSocket(), now);
    survivor.Feed("SUB reports\n");
    server.OnReadable(survivor_id, now);
    survivor.TakeOutput();

    FaultConn ingest;
    const MotifServer::ConnId ingest_id =
        server.OnAccept(ingest.NewSocket(), now);
    ingest.TakeOutput();
    ingest.Feed(feed.wire);
    server.OnReadable(ingest_id, ++now);
    server.Tick(now);

    EXPECT_EQ(static_cast<std::int64_t>(feed.points.size()),
              server.stats().points_ingested)
        << "reset_at " << reset_at;
    EXPECT_EQ(want, FramesOfType(survivor.TakeOutput(), "report"))
        << "reset_at " << reset_at;
    EXPECT_TRUE(server.Connected(survivor_id));
    EXPECT_TRUE(server.Connected(ingest_id));
  }
}

TEST(ServeFault, IngesterResetMidFeedKeepsAcknowledgedPrefixConsistent) {
  // Kill the ingest connection at every read-op position. Whatever
  // rows the engine acknowledged must produce exactly the oracle
  // prefix for that many points — never a torn row, never a duplicate.
  const ServeOptions options = SmallOptions();
  const Feed feed = MakeFeed(30);

  for (std::int64_t reset_at = 1; reset_at <= 40; ++reset_at) {
    MotifServer server = MakeServer(options);
    std::int64_t now = 0;

    FaultConn sub;
    const MotifServer::ConnId sub_id = server.OnAccept(sub.NewSocket(), now);
    sub.Feed("SUB reports\n");
    server.OnReadable(sub_id, now);
    sub.TakeOutput();

    FaultConn ingest;
    const MotifServer::ConnId ingest_id =
        server.OnAccept(ingest.NewSocket(), now);
    ingest.TakeOutput();
    ingest.set_max_read(7);  // several reads per row: resets tear mid-row
    ingest.FailAfterOps(reset_at);
    ingest.Feed(feed.wire);
    server.OnReadable(ingest_id, ++now);
    int guard = 0;
    while (server.Connected(ingest_id) && ingest.unread() > 0 &&
           !ingest.failed() && ++guard < 256) {
      server.OnReadable(ingest_id, ++now);
    }

    const std::int64_t acked = server.stats().points_ingested;
    ASSERT_LE(acked, static_cast<std::int64_t>(feed.points.size()));
    const std::vector<FleetArrival> prefix(
        feed.points.begin(),
        feed.points.begin() + static_cast<std::size_t>(acked));
    const std::vector<std::string> want =
        OracleReportFrames(options.fleet, Euclidean(), prefix);
    EXPECT_EQ(want, FramesOfType(sub.TakeOutput(), "report"))
        << "reset_at " << reset_at;
    EXPECT_TRUE(server.Connected(sub_id)) << "reset_at " << reset_at;
  }
}

// ---------------------------------------------------------------------------
// Slow subscriber vs. ingest liveness
// ---------------------------------------------------------------------------

TEST(ServeFault, StalledSubscriberNeverBlocksIngest) {
  ServeOptions options = SmallOptions();
  options.limits.subscriber_queue_bytes = 512;
  options.limits.subscriber_queue_high_water_bytes = 1024;
  MotifServer server = MakeServer(options);
  std::int64_t now = 0;

  FaultConn stuck;
  const MotifServer::ConnId stuck_id = server.OnAccept(stuck.NewSocket(), now);
  stuck.Feed("SUB reports\n");
  server.OnReadable(stuck_id, now);
  stuck.StallWrites(1 << 20);

  const Feed feed = MakeFeed(200);
  FaultConn ingest;
  const MotifServer::ConnId ingest_id =
      server.OnAccept(ingest.NewSocket(), now);
  std::size_t at = 0;
  while (at < feed.wire.size()) {
    const std::size_t chunk = std::min<std::size_t>(64, feed.wire.size() - at);
    ingest.Feed(feed.wire.substr(at, chunk));
    at += chunk;
    server.OnReadable(ingest_id, ++now);
  }

  // Every point went through regardless of the wedged subscriber, and
  // its queue stayed bounded (drop-oldest, then eviction).
  EXPECT_EQ(static_cast<std::int64_t>(feed.points.size()),
            server.stats().points_ingested);
  EXPECT_GT(server.stats().frames_dropped, 0);
  EXPECT_EQ(1, server.stats().evicted_slow);
  // Eviction is flush-then-close; the wedged socket never drains, so
  // the grace deadline reaps the connection.
  server.Tick(now + options.limits.drain_grace_ms + 1);
  EXPECT_FALSE(server.Connected(stuck_id));
}

// ---------------------------------------------------------------------------
// Garbage storms
// ---------------------------------------------------------------------------

TEST(ServeFault, RandomGarbageNeverKillsTheProcess) {
  const std::uint64_t seed = FuzzSeed(777);
  const int rounds = FuzzRounds(8);
  Rng rng(seed);

  for (int round = 0; round < rounds; ++round) {
    ServeOptions options = SmallOptions();
    options.limits.max_line_bytes = 64;
    options.limits.max_ingest_pending_bytes = 4096;
    MotifServer server = MakeServer(options);
    std::int64_t now = 0;

    FaultConn sane;
    const MotifServer::ConnId sane_id = server.OnAccept(sane.NewSocket(), now);
    sane.Feed("SUB reports\n");
    server.OnReadable(sane_id, now);
    sane.TakeOutput();

    FaultConn chaos;
    const MotifServer::ConnId chaos_id =
        server.OnAccept(chaos.NewSocket(), now);
    for (int burst = 0; burst < 50 && server.Connected(chaos_id); ++burst) {
      std::string junk;
      const std::uint64_t len = rng.NextUint64(120);
      for (std::uint64_t k = 0; k < len; ++k) {
        junk.push_back(static_cast<char>(rng.NextUint64(256)));
      }
      if (rng.NextUint64(2) == 0) junk.push_back('\n');
      chaos.Feed(junk);
      server.OnReadable(chaos_id, ++now);
      server.Tick(now);
    }

    // The sane connection still works end to end.
    sane.Feed(Row(0, 40.0, -70.0));
    server.OnReadable(sane_id, ++now);
    EXPECT_GE(server.stats().points_ingested, 1) << "round " << round;
    sane.Feed("PING\n");
    server.OnReadable(sane_id, ++now);
    EXPECT_TRUE(HasFrame(sane.TakeOutput(), "pong")) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Faults during drain
// ---------------------------------------------------------------------------

TEST(ServeFault, ResetDuringDrainStillCompletes) {
  MotifServer server = MakeServer(SmallOptions());
  std::int64_t now = 0;

  FaultConn a;
  FaultConn b;
  const MotifServer::ConnId id_a = server.OnAccept(a.NewSocket(), now);
  const MotifServer::ConnId id_b = server.OnAccept(b.NewSocket(), now);
  a.TakeOutput();
  b.TakeOutput();
  a.FailNow();            // bye write hits a dead socket
  b.StallWrites(1 << 20);  // bye write stalls past the grace period

  server.BeginDrain(now);
  EXPECT_FALSE(server.Connected(id_a));  // reset → closed immediately
  EXPECT_TRUE(server.Connected(id_b));
  server.Tick(now + SmallOptions().limits.drain_grace_ms + 1);
  EXPECT_TRUE(server.DrainComplete());
  EXPECT_TRUE(server.Shutdown().ok());
}

}  // namespace
}  // namespace frechet_motif
