#include "join/grid_index.h"

#include <gtest/gtest.h>

#include <set>

#include "join/similarity_join.h"
#include "geo/metric.h"
#include "test_util.h"
#include "util/random.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;

BoundingBox Box(double min_x, double max_x, double min_y, double max_y) {
  return BoundingBox{min_x, max_x, min_y, max_y};
}

TEST(BoundingBoxTest, OfComputesExtent) {
  Trajectory t({Point(3, -1), Point(-2, 5), Point(0, 0)});
  const BoundingBox box = BoundingBox::Of(t);
  EXPECT_DOUBLE_EQ(box.min_x, -2);
  EXPECT_DOUBLE_EQ(box.max_x, 3);
  EXPECT_DOUBLE_EQ(box.min_y, -1);
  EXPECT_DOUBLE_EQ(box.max_y, 5);
}

TEST(BoundingBoxTest, ExpandGrowsEverySide) {
  const BoundingBox box = Box(0, 1, 0, 1).Expanded(2.5);
  EXPECT_DOUBLE_EQ(box.min_x, -2.5);
  EXPECT_DOUBLE_EQ(box.max_x, 3.5);
}

TEST(BoundingBoxTest, IntersectionCases) {
  EXPECT_TRUE(Box(0, 2, 0, 2).Intersects(Box(1, 3, 1, 3)));
  EXPECT_TRUE(Box(0, 2, 0, 2).Intersects(Box(2, 3, 2, 3)));  // touching
  EXPECT_FALSE(Box(0, 1, 0, 1).Intersects(Box(2, 3, 0, 1)));
  EXPECT_FALSE(Box(0, 1, 0, 1).Intersects(Box(0, 1, 2, 3)));
}

TEST(GridIndexTest, RejectsBadCellSize) {
  EXPECT_FALSE(GridIndex::Build({}, 0.0).ok());
  EXPECT_FALSE(GridIndex::Build({}, -1.0).ok());
}

TEST(GridIndexTest, CandidatesAreSupersetOfIntersections) {
  Rng rng(5);
  std::vector<BoundingBox> boxes;
  for (int k = 0; k < 200; ++k) {
    const double x = rng.NextDouble(0.0, 1000.0);
    const double y = rng.NextDouble(0.0, 1000.0);
    boxes.push_back(
        Box(x, x + rng.NextDouble(1.0, 50.0), y, y + rng.NextDouble(1.0, 50.0)));
  }
  for (const double cell : {5.0, 37.0, 400.0}) {
    const GridIndex index = GridIndex::Build(boxes, cell).value();
    for (int q = 0; q < 30; ++q) {
      const double x = rng.NextDouble(0.0, 1000.0);
      const double y = rng.NextDouble(0.0, 1000.0);
      const BoundingBox query = Box(x, x + 80.0, y, y + 80.0);
      const std::vector<std::size_t> got = index.Candidates(query);
      const std::set<std::size_t> got_set(got.begin(), got.end());
      for (std::size_t id = 0; id < boxes.size(); ++id) {
        if (boxes[id].Intersects(query)) {
          EXPECT_TRUE(got_set.count(id))
              << "cell=" << cell << " missed box " << id;
        }
      }
    }
  }
}

TEST(GridIndexTest, CandidatesAreSortedAndUnique) {
  std::vector<BoundingBox> boxes = {Box(0, 100, 0, 100),
                                    Box(50, 150, 50, 150)};
  const GridIndex index = GridIndex::Build(boxes, 10.0).value();
  const std::vector<std::size_t> got =
      index.Candidates(Box(40, 60, 40, 60));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 0u);
  EXPECT_EQ(got[1], 1u);
}

TEST(GridIndexTest, NegativeCoordinatesWork) {
  std::vector<BoundingBox> boxes = {Box(-100, -90, -100, -90)};
  const GridIndex index = GridIndex::Build(boxes, 7.0).value();
  EXPECT_EQ(index.Candidates(Box(-95, -85, -95, -85)).size(), 1u);
  EXPECT_TRUE(index.Candidates(Box(100, 110, 100, 110)).empty());
}

TEST(GridIndexJoinTest, IndexedJoinMatchesPlainJoin) {
  std::vector<Trajectory> left;
  std::vector<Trajectory> right;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    left.push_back(MakePlanarWalk(25, seed));
    right.push_back(MakePlanarWalk(25, seed + 200));
  }
  for (const double theta : {30.0, 120.0, 500.0}) {
    JoinOptions plain_options;
    plain_options.threshold = theta;
    JoinOptions indexed_options = plain_options;
    indexed_options.use_grid_index = true;
    const StatusOr<std::vector<JoinPair>> plain =
        DfdSimilarityJoin(left, right, Euclidean(), plain_options);
    const StatusOr<std::vector<JoinPair>> indexed =
        DfdSimilarityJoin(left, right, Euclidean(), indexed_options);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(indexed.ok());
    EXPECT_EQ(plain.value(), indexed.value()) << "theta=" << theta;
  }
}

TEST(GridIndexJoinTest, IndexedSelfJoinMatchesPlainOnHaversine) {
  std::vector<Trajectory> collection;
  // Trajectories in several separated districts: the index should cut the
  // candidate count while returning identical matches.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Trajectory walk = MakePlanarWalk(30, seed, /*step=*/5.0);
    Trajectory geo;
    const Point base = LatLon(40.0 + 0.2 * static_cast<double>(seed % 5),
                              116.0);
    for (Index i = 0; i < walk.size(); ++i) {
      geo.Append(Point(base.x + walk[i].x * 1e-5, base.y + walk[i].y * 1e-5),
                 static_cast<double>(i));
    }
    collection.push_back(geo);
  }
  JoinOptions plain_options;
  plain_options.threshold = 400.0;
  JoinOptions indexed_options = plain_options;
  indexed_options.use_grid_index = true;
  JoinStats plain_stats;
  JoinStats indexed_stats;
  const StatusOr<std::vector<JoinPair>> plain =
      DfdSelfJoin(collection, Haversine(), plain_options, &plain_stats);
  const StatusOr<std::vector<JoinPair>> indexed =
      DfdSelfJoin(collection, Haversine(), indexed_options, &indexed_stats);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(plain.value(), indexed.value());
  // The grid must have filtered the far-apart districts out up front.
  EXPECT_LT(indexed_stats.pairs_total, plain_stats.pairs_total);
}

}  // namespace
}  // namespace frechet_motif
