#include "similarity/frechet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>

#include "geo/metric.h"
#include "similarity/euclidean.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;
using testing_util::MakeRandomSelfMatrix;

Trajectory Line(std::initializer_list<Point> pts) {
  return Trajectory(std::vector<Point>(pts));
}

/// Memoized textbook recursion (Eiter & Mannila) — an independent reference
/// implementation sharing no code with the production DP.
double ReferenceDfd(const Trajectory& a, const Trajectory& b,
                    const GroundMetric& metric) {
  std::map<std::pair<Index, Index>, double> memo;
  std::function<double(Index, Index)> rec = [&](Index p, Index q) -> double {
    const auto key = std::make_pair(p, q);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    const double d = metric.Distance(a[p], b[q]);
    double value;
    if (p == 0 && q == 0) {
      value = d;
    } else if (p == 0) {
      value = std::max(d, rec(0, q - 1));
    } else if (q == 0) {
      value = std::max(d, rec(p - 1, 0));
    } else {
      value = std::max(
          d, std::min({rec(p - 1, q), rec(p, q - 1), rec(p - 1, q - 1)}));
    }
    memo[key] = value;
    return value;
  };
  return rec(a.size() - 1, b.size() - 1);
}

TEST(FrechetTest, EmptyInputIsError) {
  const Trajectory empty;
  const Trajectory one = Line({{0, 0}});
  EXPECT_FALSE(DiscreteFrechet(empty, one, Euclidean()).ok());
  EXPECT_FALSE(DiscreteFrechet(one, empty, Euclidean()).ok());
}

TEST(FrechetTest, SinglePointPairs) {
  const Trajectory a = Line({{0, 0}});
  const Trajectory b = Line({{3, 4}});
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b, Euclidean()).value(), 5.0);
}

TEST(FrechetTest, IdenticalTrajectoriesHaveZeroDistance) {
  const Trajectory a = MakePlanarWalk(30, 17);
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, a, Euclidean()).value(), 0.0);
}

TEST(FrechetTest, KnownHandComputedExample) {
  // Two parallel horizontal segments 1 apart: the dog walks in lock step,
  // DFD = 1.
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  const Trajectory b = Line({{0, 1}, {1, 1}, {2, 1}, {3, 1}});
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b, Euclidean()).value(), 1.0);
}

TEST(FrechetTest, BacktrackingCurveNeedsLongerLeash) {
  // b revisits x=0 in the middle; the man on a cannot walk backwards, so
  // the leash must span the detour.
  const Trajectory a = Line({{0, 0}, {4, 0}});
  const Trajectory b = Line({{0, 0}, {4, 1}, {0, 1}, {4, 1}});
  const double d = DiscreteFrechet(a, b, Euclidean()).value();
  EXPECT_DOUBLE_EQ(d, ReferenceDfd(a, b, Euclidean()));
  EXPECT_GT(d, 1.0);
}

TEST(FrechetTest, SymmetricInArguments) {
  const Trajectory a = MakePlanarWalk(25, 3);
  const Trajectory b = MakePlanarWalk(31, 4);
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b, Euclidean()).value(),
                   DiscreteFrechet(b, a, Euclidean()).value());
}

TEST(FrechetTest, LowerBoundedByEndpointDistances) {
  const Trajectory a = MakePlanarWalk(20, 5);
  const Trajectory b = MakePlanarWalk(20, 6);
  const double d = DiscreteFrechet(a, b, Euclidean()).value();
  EXPECT_GE(d, Euclidean().Distance(a[0], b[0]));
  EXPECT_GE(d, Euclidean().Distance(a[a.size() - 1], b[b.size() - 1]));
}

TEST(FrechetTest, UpperBoundedByLockStepMax) {
  // The identity coupling is one admissible coupling, so DFD <= max
  // lock-step distance for equal-length inputs.
  const Trajectory a = MakePlanarWalk(24, 7);
  const Trajectory b = MakePlanarWalk(24, 8);
  const double d = DiscreteFrechet(a, b, Euclidean()).value();
  const double lockstep = EuclideanMaxDistance(a, b, Euclidean()).value();
  EXPECT_LE(d, lockstep + 1e-12);
}

class FrechetReferenceAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(FrechetReferenceAgreementTest, MatchesMemoizedRecursion) {
  const auto [la, lb, seed] = GetParam();
  const Trajectory a = MakePlanarWalk(la, seed);
  const Trajectory b = MakePlanarWalk(lb, seed + 1000);
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b, Euclidean()).value(),
                   ReferenceDfd(a, b, Euclidean()));
}

INSTANTIATE_TEST_SUITE_P(
    RandomWalks, FrechetReferenceAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 33),
                       ::testing::Values(1, 5, 12, 28),
                       ::testing::Values(41u, 42u, 43u)));

TEST(FrechetTest, MatrixVariantMatchesScalarForAllPrefixes) {
  const Trajectory a = MakePlanarWalk(12, 9);
  const Trajectory b = MakePlanarWalk(15, 10);
  const std::vector<double> df =
      DiscreteFrechetMatrix(a, b, Euclidean()).value();
  for (Index p = 0; p < a.size(); ++p) {
    for (Index q = 0; q < b.size(); ++q) {
      const Trajectory ap = a.Slice(0, p);
      const Trajectory bq = b.Slice(0, q);
      EXPECT_DOUBLE_EQ(df[static_cast<std::size_t>(p) * b.size() + q],
                       DiscreteFrechet(ap, bq, Euclidean()).value())
          << "prefix (" << p << "," << q << ")";
    }
  }
}

TEST(FrechetOnRangeTest, MatchesWholeTrajectoryOnFullRange) {
  const Trajectory a = MakePlanarWalk(18, 21);
  const DistanceMatrix dg = DistanceMatrix::Build(a, Euclidean()).value();
  EXPECT_DOUBLE_EQ(
      DiscreteFrechetOnRange(dg, 0, 17, 0, 17).value(),
      DiscreteFrechet(a, a, Euclidean()).value());
}

TEST(FrechetOnRangeTest, SubrangeMatchesSlicedTrajectories) {
  const Trajectory a = MakePlanarWalk(30, 22);
  const DistanceMatrix dg = DistanceMatrix::Build(a, Euclidean()).value();
  const double on_range = DiscreteFrechetOnRange(dg, 3, 11, 15, 27).value();
  const double sliced = DiscreteFrechet(a.Slice(3, 11), a.Slice(15, 27),
                                        Euclidean())
                            .value();
  EXPECT_DOUBLE_EQ(on_range, sliced);
}

TEST(FrechetOnRangeTest, RejectsBadRanges) {
  const DistanceMatrix dg = MakeRandomSelfMatrix(10, 1);
  EXPECT_FALSE(DiscreteFrechetOnRange(dg, -1, 3, 0, 5).ok());
  EXPECT_FALSE(DiscreteFrechetOnRange(dg, 4, 3, 0, 5).ok());
  EXPECT_FALSE(DiscreteFrechetOnRange(dg, 0, 3, 5, 10).ok());
}

TEST(FrechetTest, NonMonotonicityLemma1Exists) {
  // Search random matrices for a witness of Lemma 1: extending one
  // subtrajectory first decreases then increases the DFD (or vice versa).
  // The paper's Figure 5 example demonstrates this; we verify the
  // phenomenon exists rather than hard-code the (partially garbled) matrix.
  bool decreased = false;
  bool increased = false;
  for (std::uint64_t seed = 1; seed < 30 && !(decreased && increased);
       ++seed) {
    const DistanceMatrix dg = MakeRandomSelfMatrix(12, seed);
    for (Index ie = 2; ie + 1 <= 4; ++ie) {
      const double d1 = DiscreteFrechetOnRange(dg, 0, ie, 6, 9).value();
      const double d2 = DiscreteFrechetOnRange(dg, 0, ie + 1, 6, 9).value();
      if (d2 < d1) decreased = true;
      if (d2 > d1) increased = true;
    }
  }
  EXPECT_TRUE(decreased) << "containment never decreased DFD";
  EXPECT_TRUE(increased) << "containment never increased DFD";
}

}  // namespace
}  // namespace frechet_motif
