#!/usr/bin/env python3
"""Validate a bench_approx_sweep JSON artifact (BENCH_approx.json).

The sweep measures the (1+eps) approximate-search knob on a near-tie
workload: for each eps it records DP-cell counts and achieved-distance
ratios for a batch leg (FindMotif) and a streaming leg
(StreamingMotifMonitor). This script re-checks the invariants the bench
itself enforces at run time, so the *committed* artifact cannot rot:

  1. every achieved-distance ratio is within the advertised (1+eps)
     bound (the streaming leg records its worst ratio across slides);
  2. the eps = 0 row of each leg is bit-identical to the exact baseline
     (bit_identical_to_exact == 1) and has ratio exactly 1;
  3. DP cells are non-increasing as eps grows — a larger tolerance must
     never do more work on the recorded workload;
  4. with --min-stream-reduction R, the streaming leg at --at-eps (default
     0.05) must cut DP cells by at least R vs the exact run — the
     acceptance bar for the committed artifact (skip it for smoke runs,
     whose tiny workload makes the reduction noisy).

Usage:
  scripts/check_bench_approx.py BENCH_approx.json \
      [--min-stream-reduction 0.30] [--at-eps 0.05]
"""

import argparse
import json
import sys

# Headroom for the decimal JSON round-trip of the ratio; the bench
# enforced the exact bound on the original doubles.
RATIO_SLACK = 1e-9


def leg_rows(doc, name):
    rows = [k for k in doc["kernels"] if k["name"] == name]
    if len(rows) < 2:
        raise SystemExit(f"{name}: expected >= 2 eps rows, found {len(rows)}")
    rows.sort(key=lambda k: k["approx_eps"])
    if rows[0]["approx_eps"] != 0.0:
        raise SystemExit(f"{name}: no eps = 0 baseline row")
    return rows


def check_leg(rows, ratio_key):
    name = rows[0]["name"]
    previous_cells = None
    for row in rows:
        eps = row["approx_eps"]
        ratio = row[ratio_key]
        if not 1.0 - RATIO_SLACK <= ratio <= (1.0 + eps) * (1.0 + RATIO_SLACK):
            raise SystemExit(
                f"{name} eps={eps}: {ratio_key} {ratio!r} outside [1, 1+eps]")
        if eps == 0.0:
            if row["bit_identical_to_exact"] != 1.0:
                raise SystemExit(f"{name}: eps = 0 row is not bit-identical "
                                 "to the exact baseline")
            if ratio != 1.0:
                raise SystemExit(f"{name}: eps = 0 ratio {ratio!r} != 1")
        if previous_cells is not None and row["dfd_cells"] > previous_cells:
            raise SystemExit(
                f"{name} eps={eps}: dfd_cells {row['dfd_cells']:.0f} exceeds "
                f"the previous eps level's {previous_cells:.0f}")
        previous_cells = row["dfd_cells"]
        print(f"ok: {name} eps={eps:<5g} cells={row['dfd_cells']:<12.0f} "
              f"{ratio_key}={ratio:.6f}")


def check_reduction(rows, at_eps, minimum):
    row = next((r for r in rows if r["approx_eps"] == at_eps), None)
    if row is None:
        raise SystemExit(f"stream_search: no eps = {at_eps} row to gate on")
    reduction = 1.0 - row["cells_vs_exact"]
    if reduction < minimum:
        raise SystemExit(
            f"stream_search eps={at_eps}: DP-cell reduction "
            f"{100 * reduction:.1f}% below the required "
            f"{100 * minimum:.1f}%")
    print(f"ok: stream_search eps={at_eps} cuts DP cells by "
          f"{100 * reduction:.1f}% (>= {100 * minimum:.1f}% required)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument("--min-stream-reduction", type=float, default=None,
                        help="required fractional DP-cell reduction of the "
                             "streaming leg at --at-eps (e.g. 0.30)")
    parser.add_argument("--at-eps", type=float, default=0.05)
    args = parser.parse_args()

    with open(args.json_path) as f:
        doc = json.load(f)
    if doc.get("bench") != "approx_sweep":
        raise SystemExit(f"{args.json_path}: not an approx_sweep artifact")

    batch = leg_rows(doc, "batch_search")
    stream = leg_rows(doc, "stream_search")
    check_leg(batch, "distance_ratio")
    check_leg(stream, "max_distance_ratio")
    if args.min_stream_reduction is not None:
        check_reduction(stream, args.at_eps, args.min_stream_reduction)
    print(f"ok: {args.json_path} approx-sweep invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
